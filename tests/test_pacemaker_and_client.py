"""Unit tests for the pacemaker and the client pool."""

from __future__ import annotations

import pytest

from repro.consensus.client import ClientPool
from repro.consensus.config import ProtocolConfig
from repro.consensus.messages import ClientRequest, ClientResponseBatch, ResponseEntry
from repro.consensus.metrics import MetricsCollector
from repro.consensus.protocols.hotstuff2 import HotStuff2Replica
from repro.core.streamlined import HotStuff1Replica
from repro.net.latency import ConstantLatency
from repro.net.network import SimNetwork
from repro.sim.scheduler import Simulator
from repro.workloads.ycsb import YCSBWorkload

from tests.helpers import ReplicaHarness


class TestPacemaker:
    def test_enter_view_is_monotonic(self):
        harness = ReplicaHarness(HotStuff2Replica)
        pacemaker = harness.replica.pacemaker
        pacemaker.start(1)
        assert pacemaker.current_view == 1
        pacemaker.enter_view(5)
        assert pacemaker.current_view == 5
        pacemaker.enter_view(3)
        assert pacemaker.current_view == 5

    def test_completed_view_marks_exit(self):
        harness = ReplicaHarness(HotStuff2Replica)
        pacemaker = harness.replica.pacemaker
        pacemaker.start(1)
        assert not pacemaker.has_completed(1)
        # View 2 is an epoch boundary for n=4 (epoch length f+1 = 2), so completing
        # view 1 triggers Wish/TC synchronisation instead of entering directly.
        pacemaker.completed_view(1)
        assert pacemaker.has_completed(1)
        assert pacemaker.current_view == 1
        # A non-boundary completion advances immediately.
        pacemaker.force_enter(2)
        pacemaker.completed_view(2)
        assert pacemaker.has_completed(2)
        assert pacemaker.current_view == 3

    def test_entering_a_view_completes_all_older_views(self):
        harness = ReplicaHarness(HotStuff2Replica)
        pacemaker = harness.replica.pacemaker
        pacemaker.start(1)
        pacemaker.force_enter(7)
        assert pacemaker.has_completed(6)
        assert not pacemaker.has_completed(7)

    def test_share_timer_is_three_delta_after_entry(self):
        harness = ReplicaHarness(HotStuff2Replica)
        pacemaker = harness.replica.pacemaker
        pacemaker.start(1)
        expected = pacemaker.start_time[1] + 3 * harness.config.delta
        assert pacemaker.share_timer(1) == pytest.approx(expected)

    def test_view_timer_fires_timeout_callback(self):
        harness = ReplicaHarness(HotStuff2Replica, replica_id=2)
        timeouts = []
        harness.replica.on_view_timeout = lambda view: timeouts.append(view)
        harness.replica.pacemaker.start(1)
        harness.run(duration=0.05)
        assert timeouts and timeouts[0] == 1

    def test_epoch_leaders_cover_f_plus_one_views(self):
        harness = ReplicaHarness(HotStuff2Replica, n=7)
        pacemaker = harness.replica.pacemaker
        leaders = pacemaker.epoch_leaders(14)
        assert len(leaders) == harness.config.f + 1
        assert leaders[0] == harness.replica.leaders.leader_of(14)


class TestViewSynchronizer:
    """PBFT-style f+1 view-evidence amplification in the pacemaker."""

    def _started(self, n=4, replica_id=0):
        harness = ReplicaHarness(HotStuff2Replica, replica_id=replica_id, n=n)
        harness.replica.pacemaker.start(1)
        return harness, harness.replica.pacemaker

    def test_f_reports_are_not_enough_to_jump(self):
        harness, pacemaker = self._started()  # n=4 -> f=1, need 2 distinct senders
        pacemaker.note_peer_view(1, 40)
        assert pacemaker.current_view == 1
        assert pacemaker.view_table == {1: 40}

    def test_f_plus_one_reports_jump_to_the_f_plus_first_highest(self):
        harness, pacemaker = self._started()
        pacemaker.note_peer_view(1, 40)
        pacemaker.note_peer_view(2, 37)
        # two distinct senders >= f+1; the 2nd-highest report (37) is backed
        # by at least one honest replica, the maximum (40) is not.
        assert pacemaker.current_view == 37
        assert pacemaker.jumps == 1

    def test_reports_are_monotonic_per_sender(self):
        harness, pacemaker = self._started()
        pacemaker.note_peer_view(1, 40)
        pacemaker.note_peer_view(1, 12)  # stale report must not regress
        assert pacemaker.view_table[1] == 40

    def test_own_and_out_of_range_senders_are_ignored(self):
        harness, pacemaker = self._started()
        pacemaker.note_peer_view(0, 40)   # ourselves
        pacemaker.note_peer_view(99, 40)  # not a replica id
        pacemaker.note_peer_view(-1, 40)  # client pool
        assert pacemaker.view_table == {}
        assert pacemaker.current_view == 1

    def test_restored_view_table_applies_at_start(self):
        harness = ReplicaHarness(HotStuff2Replica, replica_id=0, n=4)
        pacemaker = harness.replica.pacemaker
        pacemaker.restore_view_table({1: 21, 2: 19, 0: 99})
        assert pacemaker.view_table == {1: 21, 2: 19}  # own id dropped
        assert pacemaker.current_view == 0  # priming alone never jumps
        pacemaker.start(1)
        assert pacemaker.current_view == 19

    def test_view_sync_reply_helps_a_lagging_sender(self):
        from repro.consensus.messages import ViewSync

        harness, pacemaker = self._started(replica_id=2)
        pacemaker.enter_view(30)
        sent = []
        harness.replica.send = lambda target, payload, **kw: sent.append((target, payload))
        pacemaker.handle_view_sync(ViewSync(view=3, voter=1), sender=1)
        assert len(sent) == 1
        target, reply = sent[0]
        assert target == 1
        assert isinstance(reply, ViewSync)
        assert reply.view == 30

    def test_wish_is_retransmitted_while_parked_at_a_boundary(self):
        from repro.consensus.messages import Wish

        harness = ReplicaHarness(HotStuff2Replica, replica_id=0, n=4)
        wishes = []
        harness.replica.send = lambda target, payload, **kw: (
            wishes.append((target, payload)) if isinstance(payload, Wish) else None
        )
        # View 2 is an epoch boundary for n=4 (epoch length 2): the pacemaker
        # parks awaiting a TC and must re-send its Wish every view_timeout.
        harness.replica.pacemaker.synchronize_epoch(2)
        harness.run(duration=harness.config.view_timeout * 3.5)
        assert len(wishes) >= 3 * 2  # >= 3 rounds x f+1 epoch leaders
        assert all(payload.view == 2 for _, payload in wishes)

    def test_entering_the_wished_view_stops_the_retransmission(self):
        from repro.consensus.messages import Wish

        harness = ReplicaHarness(HotStuff2Replica, replica_id=0, n=4)
        pacemaker = harness.replica.pacemaker
        pacemaker.synchronize_epoch(2)
        pacemaker.enter_view(2)
        wishes = []
        harness.replica.send = lambda target, payload, **kw: (
            wishes.append(payload) if isinstance(payload, Wish) else None
        )
        harness.run(duration=harness.config.view_timeout * 3.5)
        # Normal timer progress may wish for *later* boundaries (view 4), but
        # the satisfied wish for view 2 must not be retransmitted.
        assert all(wish.view != 2 for wish in wishes)

    def test_wish_share_is_cached_across_retransmissions(self):
        from repro.consensus.messages import Wish

        harness = ReplicaHarness(HotStuff2Replica, replica_id=0, n=4)
        pacemaker = harness.replica.pacemaker
        created = []
        original = harness.authority.create_timeout_vote

        def counting(voter, view):
            created.append(view)
            return original(voter, view)

        harness.authority.create_timeout_vote = counting
        wishes = []
        harness.replica.send = lambda target, payload, **kw: (
            wishes.append(payload) if isinstance(payload, Wish) else None
        )
        pacemaker.synchronize_epoch(2)
        harness.run(duration=harness.config.view_timeout * 3.5)
        # Several retransmission rounds went out, but the threshold-signing
        # work for the wished view happened exactly once.
        assert len([w for w in wishes if w.view == 2]) >= 3 * 2
        assert created.count(2) == 1
        shares = {id(w.share) for w in wishes if w.view == 2}
        assert len(shares) == 1

    def test_view_entry_prunes_stale_synchronisation_state(self):
        harness, pacemaker = self._started()
        pacemaker.note_peer_view(1, 3)
        pacemaker.note_peer_view(2, 50)
        pacemaker._tc_formed.update({2, 40})
        pacemaker._tc_entered.update({2, 40})
        pacemaker._sent_wish_shares[2] = object()
        pacemaker._sent_wish_shares[40] = object()
        pacemaker.enter_view(10)
        # Everything keyed at or below the entered view is gone; higher
        # entries (still-useful evidence and state) survive.
        assert pacemaker.view_table == {2: 50}
        assert pacemaker._tc_formed == {40}
        assert pacemaker._tc_entered == {40}
        assert set(pacemaker._sent_wish_shares) == {40}

    def test_wish_carries_current_view_and_high_cert_evidence(self):
        harness, pacemaker = self._started(replica_id=0)
        sent = []
        harness.replica.send = lambda target, payload, **kw: sent.append(payload)
        pacemaker.synchronize_epoch(2)
        assert sent and all(msg.current_view == pacemaker.current_view for msg in sent)
        assert all(msg.high_cert is not None for msg in sent)


def build_client_pool(required_quorum, num_clients=2, n=4):
    sim = Simulator(seed=5)
    config = ProtocolConfig(n=n, batch_size=10)
    network = SimNetwork(sim, latency=ConstantLatency(0.0005))
    metrics = MetricsCollector()
    pool = ClientPool(
        sim=sim,
        network=network,
        workload=YCSBWorkload(record_count=100),
        config=config,
        metrics=metrics,
        num_clients=num_clients,
        required_quorum=required_quorum,
    )
    return sim, network, metrics, pool


def response_batch(replica_id, txn, block_hash="b" * 64, speculative=True, digest="d1"):
    entry = ResponseEntry(txn_id=txn.txn_id, client_id=txn.client_id, result_digest=digest, success=True)
    return ClientResponseBatch(
        replica_id=replica_id,
        view=1,
        slot=1,
        block_hash=block_hash,
        speculative=speculative,
        entries=(entry,),
    )


class TestClientPool:
    def test_start_issues_one_request_per_client(self):
        sim, network, metrics, pool = build_client_pool(required_quorum=2, num_clients=3)
        pool.start()
        assert len(pool.outstanding) == 3

    def test_completion_requires_quorum_of_matching_responses(self):
        sim, network, metrics, pool = build_client_pool(required_quorum=3)
        pool.start()
        txn = next(iter(pool.outstanding.values())).txn
        pool._handle_response_batch(response_batch(0, txn))
        pool._handle_response_batch(response_batch(1, txn))
        assert txn.txn_id in pool.outstanding
        pool._handle_response_batch(response_batch(2, txn))
        assert txn.txn_id not in pool.outstanding
        assert pool.completed_count == 1
        assert metrics.samples[0].speculative

    def test_duplicate_responses_from_same_replica_count_once(self):
        sim, network, metrics, pool = build_client_pool(required_quorum=2)
        pool.start()
        txn = next(iter(pool.outstanding.values())).txn
        pool._handle_response_batch(response_batch(0, txn))
        pool._handle_response_batch(response_batch(0, txn))
        assert txn.txn_id in pool.outstanding

    def test_mismatched_results_do_not_combine(self):
        sim, network, metrics, pool = build_client_pool(required_quorum=2)
        pool.start()
        txn = next(iter(pool.outstanding.values())).txn
        pool._handle_response_batch(response_batch(0, txn, digest="d1"))
        pool._handle_response_batch(response_batch(1, txn, digest="d2"))
        assert txn.txn_id in pool.outstanding

    def test_responses_for_different_blocks_do_not_combine(self):
        sim, network, metrics, pool = build_client_pool(required_quorum=2)
        pool.start()
        txn = next(iter(pool.outstanding.values())).txn
        pool._handle_response_batch(response_batch(0, txn, block_hash="a" * 64))
        pool._handle_response_batch(response_batch(1, txn, block_hash="c" * 64))
        assert txn.txn_id in pool.outstanding

    def test_completion_spawns_next_request_closed_loop(self):
        sim, network, metrics, pool = build_client_pool(required_quorum=1, num_clients=1)
        pool.start()
        first_txn = next(iter(pool.outstanding.values())).txn
        pool._handle_response_batch(response_batch(0, first_txn))
        assert len(pool.outstanding) == 1
        remaining = next(iter(pool.outstanding.values())).txn
        assert remaining.txn_id != first_txn.txn_id

    def test_requests_reach_replicas_over_the_network(self):
        sim, network, metrics, pool = build_client_pool(required_quorum=2, num_clients=2)

        class Sink:
            node_id = 0
            received = []

            def deliver(self, envelope):
                Sink.received.append(envelope.payload)

        network.register(Sink())
        pool.target_replicas = [0]
        pool.start()
        sim.run(until=0.01)
        assert all(isinstance(msg, ClientRequest) for msg in Sink.received)
        assert len(Sink.received) == 2

    def test_client_quorum_rules_per_protocol(self):
        config = ProtocolConfig(n=31)
        assert HotStuff1Replica.client_quorum(config) == 21
        assert HotStuff2Replica.client_quorum(config) == 11

"""Tests for the declarative scenario engine: specs, expansion, execution.

Covers the three satellite requirements — suite→grid expansion round-trips
through JSON, serial and parallel execution are bit-identical for equal
seeds, and repeat aggregation computes the right mean/stddev — plus the
registry and CLI glue.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.executor import (
    ParallelRunner,
    SerialRunner,
    aggregate_records,
    execute_scenario,
    execute_suite,
    make_runner,
)
from repro.experiments.report import format_series, merge_uncertainty
from repro.experiments.scenarios import (
    SCENARIOS,
    default_suite,
    scalability_spec,
    scenario_spec,
    slotting_ablation_spec,
)
from repro.experiments.spec import (
    RunRecord,
    ScenarioSpec,
    SuiteSpec,
    expand_scenario,
    expand_suite,
    load_suite,
)


def tiny_spec(**overrides) -> ScenarioSpec:
    defaults = dict(
        protocols=("hotstuff-1", "hotstuff-2"),
        replica_counts=(4,),
        batch_size=10,
        duration=0.15,
        warmup=0.03,
    )
    defaults.update(overrides)
    return scalability_spec(**defaults)


class TestSpecSerialization:
    def test_scenario_round_trips_through_dict(self):
        spec = tiny_spec(repeats=2, seed=7)
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone == spec

    def test_suite_round_trips_through_json(self):
        suite = SuiteSpec(
            name="roundtrip",
            scenarios=[tiny_spec(), slotting_ablation_spec(n=4, duration=0.2)],
            repeats=3,
            seed=11,
            overrides={"duration": 0.1},
        )
        clone = SuiteSpec.from_json(suite.to_json())
        assert clone == suite
        # ... and the expansion of the clone is identical run for run.
        assert expand_suite(clone) == expand_suite(suite)

    def test_json_figure_reference_resolves_through_registry(self):
        payload = json.dumps(
            {
                "name": "ref-suite",
                "scenarios": [
                    {"figure": "fig8-scalability", "overrides": {"replica_counts": [4]}}
                ],
            }
        )
        suite = SuiteSpec.from_json(payload)
        assert suite.scenarios[0].kind == "scalability"
        assert suite.scenarios[0].axes == {"n": [4]}

    def test_load_suite_rejects_bad_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="invalid suite config"):
            load_suite(str(path))

    def test_scenario_dict_without_name_or_figure_rejected(self):
        with pytest.raises(ConfigurationError, match="name"):
            ScenarioSpec.from_dict({"kind": "scalability"})


class TestExpansion:
    def test_expansion_order_is_point_major_protocol_repeat(self):
        spec = tiny_spec(replica_counts=(4, 8), repeats=2, seed=5)
        requests = expand_scenario(spec)
        assert len(requests) == 2 * 2 * 2
        assert [r.index for r in requests] == list(range(8))
        assert [(r.point["n"], r.protocol, r.repeat) for r in requests] == [
            (4, "hotstuff-1", 0), (4, "hotstuff-1", 1),
            (4, "hotstuff-2", 0), (4, "hotstuff-2", 1),
            (8, "hotstuff-1", 0), (8, "hotstuff-1", 1),
            (8, "hotstuff-2", 0), (8, "hotstuff-2", 1),
        ]
        # Repeats share a group; distinct points/protocols never do.
        assert requests[0].group == requests[1].group
        assert len({r.group for r in requests}) == 4
        # Repeat r runs with seed + r.
        assert [r.seed for r in requests[:2]] == [5, 6]

    def test_suite_overrides_apply_to_every_scenario(self):
        suite = SuiteSpec(
            name="s",
            scenarios=[tiny_spec()],
            repeats=2,
            seed=42,
            overrides={"duration": 0.07},
        )
        requests = expand_suite(suite)
        assert all(r.params["duration"] == 0.07 for r in requests)
        assert {r.seed for r in requests} == {42, 43}

    def test_duplicate_scenario_names_rejected(self):
        suite = SuiteSpec(name="s", scenarios=[tiny_spec(), tiny_spec()])
        with pytest.raises(ConfigurationError, match="duplicate"):
            expand_suite(suite)

    def test_unknown_kind_fails_fast(self):
        spec = ScenarioSpec(name="x", kind="no-such-kind", protocols=("hotstuff-1",))
        with pytest.raises(ConfigurationError, match="unknown scenario kind"):
            expand_scenario(spec)

    def test_num_runs_matches_expansion(self):
        spec = tiny_spec(replica_counts=(4, 8, 16), repeats=3)
        assert spec.num_runs() == len(expand_scenario(spec)) == 3 * 2 * 3


class TestExecution:
    def test_serial_and_parallel_runs_are_identical(self):
        spec = tiny_spec(repeats=2, seed=9)
        serial = execute_scenario(spec, jobs=1)
        parallel = execute_scenario(spec, jobs=3)
        assert serial == parallel

    def test_parallel_runner_preserves_request_order(self):
        spec = tiny_spec(replica_counts=(4, 8))
        requests = expand_scenario(spec)
        records = ParallelRunner(jobs=2).run(requests)
        assert [record.index for record in records] == [r.index for r in requests]

    def test_make_runner_picks_serial_for_one_job(self):
        assert isinstance(make_runner(None), SerialRunner)
        assert isinstance(make_runner(1), SerialRunner)
        assert isinstance(make_runner(2), ParallelRunner)

    def test_execute_suite_returns_rows_per_scenario(self):
        suite = SuiteSpec(
            name="two",
            scenarios=[
                tiny_spec(),
                slotting_ablation_spec(n=4, batch_size=10, duration=0.2, warmup=0.05),
            ],
        )
        results = execute_suite(suite)
        assert list(results) == ["fig8-scalability", "ablation-slotting"]
        assert len(results["fig8-scalability"]) == 2
        assert len(results["ablation-slotting"]) == 4

    def test_single_repeat_rows_have_no_aggregation_columns(self):
        rows = execute_scenario(tiny_spec())
        assert all("repeats" not in row for row in rows)
        assert all(not any(key.endswith("_std") for key in row) for row in rows)

    def test_repeat_rows_carry_mean_std_and_count(self):
        rows = execute_scenario(tiny_spec(repeats=3, seed=2))
        for row in rows:
            assert row["repeats"] == 3
            assert "throughput_tps_std" in row and row["throughput_tps_std"] >= 0.0


class TestAggregationMath:
    @staticmethod
    def record(index, group, throughput, latency):
        row = {
            "protocol": "hotstuff-1",
            "throughput_tps": throughput,
            "avg_latency_ms": latency,
            "n": 4,
        }
        return RunRecord(
            index=index, group=group, scenario="s", repeat=index, seed=index,
            row=row, metrics={"latency_ms": latency, "throughput": throughput},
        )

    def test_mean_and_population_stddev(self):
        records = [
            self.record(0, 0, 100.0, 4.0),
            self.record(1, 0, 200.0, 6.0),
            self.record(2, 0, 300.0, 8.0),
        ]
        (row,) = aggregate_records(records)
        assert row["throughput_tps"] == 200.0
        assert row["throughput_tps_std"] == pytest.approx(81.6, abs=0.05)
        assert row["avg_latency_ms"] == 6.0
        assert row["avg_latency_ms_std"] == pytest.approx(1.633, abs=0.001)
        assert row["repeats"] == 3
        assert row["n"] == 4  # non-metric columns pass through

    def test_groups_keep_first_appearance_order(self):
        records = [
            self.record(2, 1, 30.0, 3.0),
            self.record(0, 0, 10.0, 1.0),
            self.record(1, 0, 20.0, 2.0),
        ]
        rows = aggregate_records(records)
        assert [row["throughput_tps"] for row in rows] == [15.0, 30.0]

    def test_merge_uncertainty_renders_pm_cells(self):
        rows = [{"protocol": "p", "throughput_tps": 10.0, "throughput_tps_std": 1.5}]
        (merged,) = merge_uncertainty(rows)
        assert merged["throughput_tps"] == "10.0 ±1.5"
        assert "throughput_tps_std" not in merged
        text = format_series(rows, title="t")
        assert "±1.5" in text


class TestRegistry:
    def test_every_figure_has_a_factory(self):
        assert set(SCENARIOS) == {
            "fig8-scalability", "fig8-batching", "fig8-geo-ycsb", "fig8-geo-tpcc",
            "fig9-delay", "fig9-geo", "fig10-slowness", "fig10-tailfork",
            "fig10-rollback", "latency-breakdown", "ablation-slotting",
            "chaos-recovery", "chaos-fuzz", "snapshot-recovery",
        }
        for name in SCENARIOS:
            spec = scenario_spec(name)
            assert spec.name == name
            assert spec.num_runs() >= 4

    def test_unknown_scenario_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            scenario_spec("fig99-nope")

    def test_default_suite_passes_common_kwargs(self):
        suite = default_suite(names=("fig8-scalability", "ablation-slotting"), seed=9, repeats=2)
        assert [s.name for s in suite.scenarios] == ["fig8-scalability", "ablation-slotting"]
        assert all(s.seed == 9 and s.repeats == 2 for s in suite.scenarios)


class TestLegacyBuilderEquivalence:
    def test_series_wrapper_matches_direct_engine_run(self):
        from repro.experiments.scenarios import scalability_series

        wrapper = scalability_series(
            protocols=("hotstuff-1",), replica_counts=(4,), batch_size=10,
            duration=0.15, warmup=0.03,
        )
        direct = execute_scenario(
            scalability_spec(
                protocols=("hotstuff-1",), replica_counts=(4,), batch_size=10,
                duration=0.15, warmup=0.03,
            )
        )
        assert wrapper == direct

"""Wire-codec round-trips for every protocol message type."""

from __future__ import annotations

import json

import pytest

from repro.consensus.certificates import CertKind, Certificate
from repro.consensus.messages import (
    ClientRequest,
    ClientRequestBatch,
    ClientResponseBatch,
    FetchRequest,
    FetchResponse,
    NewSlot,
    NewView,
    Prepare,
    Propose,
    ProposeVote,
    Reject,
    ResponseEntry,
    SnapshotRequest,
    SnapshotResponse,
    TimeoutCertificateMsg,
    ViewSync,
    Wish,
)
from repro.checkpoint.snapshot import Snapshot
from repro.crypto.threshold import ThresholdScheme
from repro.experiments.report import format_network_breakdown
from repro.ledger.block import Block, make_genesis_block
from repro.ledger.transaction import Transaction
from repro.live import codec
from repro.types import NULL_DIGEST


def _fixture_objects():
    """Build one of everything: shares, an aggregate, a block, a certificate."""
    scheme = ThresholdScheme(n=4, threshold=3, seed=7)
    shares = [scheme.create_share(signer, "digest-of-vote", context="prepare") for signer in range(3)]
    aggregate = scheme.aggregate(shares)
    txns = tuple(
        Transaction.create(
            client_id=-1_000_000 - i,
            operation="ycsb_write",
            payload={"key": 40 + i, "value": "v" * 16},
            submitted_at=0.25,
        )
        for i in range(3)
    )
    block = Block.build(
        view=5,
        slot=2,
        parent_hash=make_genesis_block().block_hash,
        proposer=1,
        transactions=txns,
        carry_hash=NULL_DIGEST,
    )
    cert = Certificate(
        kind=CertKind.PREPARE,
        view=5,
        slot=2,
        block_hash=block.block_hash,
        signature=aggregate,
        formed_in_view=6,
    )
    return shares, block, cert, txns


def _all_messages():
    shares, block, cert, txns = _fixture_objects()
    entries = tuple(
        ResponseEntry(txn_id=txn.txn_id, client_id=txn.client_id, result_digest="r" * 64, success=True)
        for txn in txns
    )
    return [
        ClientRequest(txn=txns[0]),
        ClientRequestBatch(txns=txns),
        ClientResponseBatch(
            replica_id=2, view=5, slot=2, block_hash=block.block_hash, speculative=True, entries=entries
        ),
        Propose(view=5, slot=2, block=block, justify=cert, commit_cert=cert, carry_hash=block.block_hash),
        Propose(view=5, slot=2, block=block, justify=cert),  # optional fields absent
        ProposeVote(view=5, voter=3, block_hash=block.block_hash, share=shares[0]),
        Prepare(view=5, cert=cert),
        NewView(view=6, voter=1, high_cert=cert, share=shares[1], voted_block_hash=block.block_hash),
        NewView(view=6, voter=1, high_cert=cert, share=None),  # timeout vote
        NewSlot(view=5, slot=3, voter=0, high_cert=cert, share=shares[2], voted_block_hash=block.block_hash),
        Reject(view=5, slot=3, voter=2, high_cert=cert),
        Wish(view=6, voter=3, share=shares[0]),
        Wish(view=6, voter=3, share=shares[0], current_view=5, high_cert=cert),
        TimeoutCertificateMsg(view=6, cert=cert),
        TimeoutCertificateMsg(view=6, cert=cert, sender_view=5, high_cert=cert),
        ViewSync(view=7, voter=2, high_cert=cert),
        ViewSync(view=7, voter=2),  # beacon before any certificate is known
        FetchRequest(block_hash=block.block_hash, requester=1),
        FetchResponse(block=block),
        SnapshotRequest(requester=2, have_height=7),
        SnapshotResponse(responder=1),  # "nothing newer": fall back to fetch
        SnapshotResponse(
            responder=1,
            snapshot=Snapshot(
                height=1,
                block=block,
                cert=cert,
                state_digest="d" * 64,
                state={"tables": {"usertable": [["user1", "v1"], [{"__tuple__": [1, 2]}, {"ytd": 0.5}]]}},
                committed_hashes=[block.block_hash],
            ),
        ),
    ]


class TestMessageRoundTrip:
    def test_every_message_type_round_trips(self):
        seen_types = set()
        for message in _all_messages():
            decoded = codec.decode_message(codec.encode_message(message))
            assert decoded == message
            seen_types.add(type(message))
        assert seen_types == set(codec.MESSAGE_TYPES)

    def test_nested_objects_are_reconstructed_with_their_types(self):
        _, block, cert, _ = _fixture_objects()
        proposal = codec.decode_message(codec.encode_message(Propose(view=5, slot=2, block=block, justify=cert)))
        assert isinstance(proposal.block, Block)
        assert isinstance(proposal.block.transactions, tuple)
        assert isinstance(proposal.block.transactions[0], Transaction)
        assert isinstance(proposal.justify, Certificate)
        assert proposal.justify.kind is CertKind.PREPARE
        assert isinstance(proposal.justify.signature.signers, tuple)

    def test_transaction_payload_keys_survive_including_non_string(self):
        txn = Transaction.create(client_id=1, operation="op", payload={1: "a", "b": [1, 2], "c": {"d": 0.5}})
        decoded = codec.decode_message(codec.encode_message(ClientRequest(txn=txn)))
        assert decoded.txn.payload == {1: "a", "b": [1, 2], "c": {"d": 0.5}}

    def test_unknown_type_raises(self):
        with pytest.raises(codec.UnknownWireTypeError):
            codec.encode_message(object())

    def test_garbage_bytes_raise_codec_error(self):
        with pytest.raises(codec.CodecError):
            codec.decode_message(b"not json at all{")


class TestEnvelopeFrames:
    def test_frame_round_trip_preserves_routing_fields(self):
        message = _all_messages()[0]
        frame = codec.encode_envelope_frame(3, -1, message, 1.25)
        (length,) = codec.FRAME_HEADER.unpack(frame[:4])
        assert length == len(frame) - 4
        sender, receiver, sent_at, payload = codec.decode_envelope_body(frame[4:])
        assert (sender, receiver, sent_at, payload) == (3, -1, 1.25, message)

    def test_wire_version_mismatch_rejected(self):
        frame = codec.encode_envelope_frame(0, 1, _all_messages()[0], 0.0)
        # Untraced frames stay at the pre-tracing version on the wire.
        marker = b'{"v":%d,' % codec.UNTRACED_WIRE_VERSION
        body = frame[4:].replace(marker, b'{"v":99,')
        assert body != frame[4:]  # the marker must have been found and replaced
        with pytest.raises(codec.CodecError):
            codec.decode_envelope_body(body)


class TestVersionSkew:
    """Version-1 peers predate the view-synchronisation fields; their
    documents (and frames) must still decode, with the new fields falling
    back to the dataclass defaults."""

    def test_v1_wish_document_decodes_with_default_evidence_fields(self):
        shares, _, _, _ = _fixture_objects()
        wish = Wish(view=6, voter=3, share=shares[0], current_view=5)
        document = codec.message_to_wire(wish)
        del document["current_view"]
        del document["high_cert"]
        decoded = codec.message_from_wire(document)
        assert decoded == Wish(view=6, voter=3, share=shares[0])

    def test_v1_timeout_cert_document_decodes_with_default_evidence_fields(self):
        _, _, cert, _ = _fixture_objects()
        message = TimeoutCertificateMsg(view=6, cert=cert, sender_view=5, high_cert=cert)
        document = codec.message_to_wire(message)
        del document["sender_view"]
        del document["high_cert"]
        decoded = codec.message_from_wire(document)
        assert decoded == TimeoutCertificateMsg(view=6, cert=cert)

    def test_v1_frames_are_still_accepted(self):
        shares, _, _, _ = _fixture_objects()
        document = codec.message_to_wire(Wish(view=6, voter=3, share=shares[0]))
        del document["current_view"]
        del document["high_cert"]
        body = json.dumps(
            {"v": 1, "s": 0, "r": 1, "a": 0.5, "m": document}, separators=(",", ":")
        ).encode("utf-8")
        sender, receiver, sent_at, payload = codec.decode_envelope_body(body)
        assert (sender, receiver, sent_at) == (0, 1, 0.5)
        assert payload == Wish(view=6, voter=3, share=shares[0])

    def test_current_version_is_5_and_older_versions_remain_supported(self):
        # v2 added view-sync evidence, v3 the snapshot state-transfer
        # messages, v4 the binary codec, v5 the optional trace sequence.
        assert codec.WIRE_VERSION == 5
        assert set(codec.SUPPORTED_WIRE_VERSIONS) == {1, 2, 3, 4, 5}
        # Frames without trace context still go out at v4 — byte-identical
        # to what pre-v5 peers emit and accept.
        assert codec.UNTRACED_WIRE_VERSION == 4


class TestBinaryCodec:
    """Wire version 4: the struct-packed codec behind the same API."""

    def test_every_message_type_round_trips_in_binary(self):
        seen_types = set()
        with codec.wire_codec_scope("binary"):
            for message in _all_messages():
                data = codec.encode_message(message)
                assert data[:1] == b"\x09"  # every message is a registered object
                assert codec.decode_message(data) == message
                seen_types.add(type(message))
        assert seen_types == set(codec.MESSAGE_TYPES)

    def test_binary_envelope_frame_round_trips(self):
        codec.reset_size_cache()
        message = _all_messages()[2]  # a Propose with a full block
        with codec.wire_codec_scope("binary"):
            frame = codec.encode_envelope_frame(3, -1, message, 1.25)
            body = frame[4:]
            assert body[0] == codec.BINARY_MAGIC
            assert codec.decode_envelope_body(body) == (3, -1, 1.25, message)

    def test_binary_is_leaner_than_json_for_every_message(self):
        for message in _all_messages():
            with codec.wire_codec_scope("binary"):
                binary = codec.encode_message(message)
            json_bytes = codec.encode_message(message)
            assert len(binary) < len(json_bytes), type(message).__name__

    def test_json_peer_decodes_v4_binary_frames(self):
        """Mid-upgrade skew: a JSON-emitting peer receives binary frames."""
        codec.reset_size_cache()
        message = _all_messages()[0]
        with codec.wire_codec_scope("binary"):
            frame = codec.encode_envelope_frame(0, 2, message, 0.5)
        assert codec.wire_codec() == "json"
        assert codec.decode_envelope_body(frame[4:]) == (0, 2, 0.5, message)

    def test_binary_peer_decodes_v1_v2_v3_json_frames(self):
        """Mid-upgrade skew the other way: a binary-emitting peer receives
        older JSON frames, including ones missing post-v1 fields."""
        shares, _, cert, _ = _fixture_objects()
        document = codec.message_to_wire(Wish(view=6, voter=3, share=shares[0]))
        del document["current_view"]
        del document["high_cert"]
        v1_body = json.dumps(
            {"v": 1, "s": 0, "r": 1, "a": 0.5, "m": document}, separators=(",", ":")
        ).encode("utf-8")
        v2_message = TimeoutCertificateMsg(view=6, cert=cert, sender_view=5, high_cert=cert)
        v2_body = json.dumps(
            {"v": 2, "s": 2, "r": 3, "a": 1.5, "m": codec.message_to_wire(v2_message)},
            separators=(",", ":"),
        ).encode("utf-8")
        v3_message = SnapshotRequest(requester=2, have_height=7)
        v3_body = json.dumps(
            {"v": 3, "s": 1, "r": 0, "a": 2.5, "m": codec.message_to_wire(v3_message)},
            separators=(",", ":"),
        ).encode("utf-8")
        with codec.wire_codec_scope("binary"):
            assert codec.decode_envelope_body(v1_body) == (
                0, 1, 0.5, Wish(view=6, voter=3, share=shares[0])
            )
            assert codec.decode_envelope_body(v2_body) == (2, 3, 1.5, v2_message)
            assert codec.decode_envelope_body(v3_body) == (1, 0, 2.5, v3_message)

    def test_unsupported_binary_wire_version_rejected(self):
        codec.reset_size_cache()
        with codec.wire_codec_scope("binary"):
            frame = codec.encode_envelope_frame(0, 1, _all_messages()[0], 0.0)
        body = bytearray(frame[4:])
        assert body[1] == codec.UNTRACED_WIRE_VERSION  # single-byte varint
        body[1] = 99
        with pytest.raises(codec.CodecError, match="version"):
            codec.decode_envelope_body(bytes(body))

    def test_truncated_binary_frames_raise_codec_error(self):
        codec.reset_size_cache()
        with codec.wire_codec_scope("binary"):
            body = codec.encode_envelope_frame(0, 1, _all_messages()[2], 0.0)[4:]
        for cut in (len(body) // 2, len(body) - 1, 12):
            with pytest.raises(codec.CodecError):
                codec.decode_envelope_body(body[:cut])

    def test_trailing_bytes_after_binary_payload_rejected(self):
        codec.reset_size_cache()
        with codec.wire_codec_scope("binary"):
            body = codec.encode_envelope_frame(0, 1, _all_messages()[0], 0.0)[4:]
            with pytest.raises(codec.CodecError, match="trailing"):
                codec.decode_envelope_body(body + b"\x00")
            with pytest.raises(codec.CodecError, match="trailing"):
                codec.decode_message(codec.encode_message(_all_messages()[0]) + b"\x00")

    def test_unknown_binary_type_code_rejected(self):
        # v4 layout: no trailing seq varint between the double and the payload.
        head = bytearray((codec.BINARY_MAGIC, codec.UNTRACED_WIRE_VERSION, 0, 2))
        head += codec._DOUBLE.pack(0.0)
        with pytest.raises(codec.CodecError, match="type code"):
            codec.decode_envelope_body(bytes(head) + b"\xff")

    def test_overlong_varint_rejected(self):
        # v4 layout: no trailing seq varint between the double and the payload.
        head = bytearray((codec.BINARY_MAGIC, codec.UNTRACED_WIRE_VERSION, 0, 2))
        head += codec._DOUBLE.pack(0.0)
        with pytest.raises(codec.CodecError, match="varint"):
            codec.decode_envelope_body(bytes(head) + b"\x03" + b"\x80" * 11)

    def test_oversized_frame_raises_configuration_error(self, monkeypatch):
        from repro.errors import ConfigurationError

        monkeypatch.setattr(codec, "MAX_FRAME_BYTES", 64)
        with codec.wire_codec_scope("binary"):
            with pytest.raises(codec.FrameTooLargeError) as excinfo:
                codec.encode_envelope_frame(0, 1, _all_messages()[2], 0.0)
        assert isinstance(excinfo.value, ConfigurationError)
        assert isinstance(excinfo.value, codec.CodecError)

    def test_broadcast_payloads_share_one_decoded_object(self):
        """Per-receiver frames spliced around one encoded message decode to
        the same object, mirroring the simulator's single delivered message."""
        codec.reset_size_cache()
        message = _all_messages()[2]
        with codec.wire_codec_scope("binary"):
            encoded = codec.encode_message(message)
            body_a = codec.frame_from_message(0, 1, encoded, 0.25)[4:]
            body_b = codec.frame_from_message(0, 2, encoded, 0.25)[4:]
            payload_a = codec.decode_envelope_body(body_a)[3]
            payload_b = codec.decode_envelope_body(body_b)[3]
        assert payload_a == message
        assert payload_a is payload_b

    def test_response_entries_cache_keeps_distinct_batches_distinct(self):
        codec.reset_size_cache()
        entries_a = tuple(
            ResponseEntry(txn_id=i, client_id=-1 - i, result_digest="a" * 64, success=True)
            for i in range(5)
        )
        entries_b = entries_a[:-1] + (
            ResponseEntry(txn_id=4, client_id=-5, result_digest="b" * 64, success=False),
        )
        batches = [
            ClientResponseBatch(replica_id=r, view=1, slot=1, block_hash="c" * 64,
                                speculative=False, entries=entries)
            for entries in (entries_a, entries_b)
            for r in range(3)
        ]
        with codec.wire_codec_scope("binary"):
            for batch in batches:
                assert codec.decode_message(codec.encode_message(batch)) == batch


class TestEncodedSize:
    def test_known_messages_are_sized_from_their_encoding(self):
        codec._size_cache.clear()  # other tests' runs may have seeded shapes
        for message in _all_messages():
            expected = len(codec.encode_message(message)) + codec.ENVELOPE_OVERHEAD
            assert codec.encoded_size(message) == expected

    def test_unknown_payloads_charge_the_default(self):
        assert codec.encoded_size("plain string") == codec.DEFAULT_SIZE_BYTES
        assert codec.encoded_size(None, default=99) == 99

    def test_size_scales_with_batch(self):
        shares, block, cert, txns = _fixture_objects()
        big = Block.build(view=5, slot=1, parent_hash=block.parent_hash, proposer=0, transactions=txns * 20)
        small = Propose(view=5, slot=1, block=block, justify=cert)
        large = Propose(view=5, slot=1, block=big, justify=cert)
        assert codec.encoded_size(large) > codec.encoded_size(small) + 1000


class TestNetworkBreakdownReport:
    def test_renders_per_type_rows_and_totals(self):
        stats = {
            "messages_sent": 12,
            "messages_delivered": 10,
            "messages_dropped": 2,
            "bytes_sent": 3456,
            "sent_by_type": {"Propose": 4, "NewView": 8},
            "delivered_by_type": {"Propose": 4, "NewView": 6},
        }
        table = format_network_breakdown(stats)
        lines = table.splitlines()
        assert any(line.startswith("NewView") for line in lines)  # sorted by sent desc
        assert any(line.startswith("Propose") for line in lines)
        assert any("(total)" in line and "3456" in line for line in lines)

    def test_plain_stats_render_totals_only(self):
        table = format_network_breakdown({"messages_sent": 1, "bytes_sent": 256})
        assert "(total)" in table

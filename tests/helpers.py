"""Test helpers for constructing standalone replicas and small deployments."""

from __future__ import annotations

from repro.consensus.certificates import CertificateAuthority
from repro.consensus.config import ProtocolConfig
from repro.consensus.costs import CostModel
from repro.consensus.leader import RoundRobinLeaderElection
from repro.consensus.mempool import Mempool
from repro.consensus.metrics import MetricsCollector
from repro.crypto.threshold import ThresholdScheme
from repro.ledger.kvstore import KVStateMachine
from repro.net.latency import ConstantLatency
from repro.net.network import SimNetwork
from repro.sim.scheduler import Simulator


class ReplicaHarness:
    """A single replica wired to a private simulator and network.

    Handler methods can be invoked directly with crafted messages, which makes
    it easy to unit-test voting rules, SafeSlot cases and commit rules without
    running a full deployment.
    """

    def __init__(self, replica_class, replica_id=0, n=4, batch_size=10, view_timeout=0.01, seed=3):
        self.sim = Simulator(seed=seed)
        self.config = ProtocolConfig(n=n, batch_size=batch_size, view_timeout=view_timeout, delta=0.001)
        self.network = SimNetwork(self.sim, latency=ConstantLatency(0.0005))
        self.scheme = ThresholdScheme(n=n, threshold=self.config.quorum, seed=seed)
        self.authority = CertificateAuthority(self.scheme)
        self.leaders = RoundRobinLeaderElection(n)
        self.mempool = Mempool()
        self.metrics = MetricsCollector()
        self.replica = replica_class(
            replica_id,
            self.sim,
            self.network,
            self.config,
            self.authority,
            self.leaders,
            KVStateMachine(),
            self.mempool,
            self.metrics,
            costs=CostModel(),
        )

    def vote_shares(self, kind, block, voters=None):
        """Create a quorum of vote shares for *block*."""
        voters = range(self.config.quorum) if voters is None else voters
        return [
            self.authority.create_vote(voter, kind, block.view, block.slot, block.block_hash)
            for voter in voters
        ]

    def certificate(self, kind, block, formed_in_view=None, voters=None):
        """Create a valid certificate of *kind* for *block*."""
        shares = self.vote_shares(kind, block, voters)
        return self.authority.form_certificate(
            kind, block.view, block.slot, block.block_hash, shares, formed_in_view=formed_in_view
        )

    def run(self, duration=0.05):
        """Drain the simulator for *duration* simulated seconds."""
        self.sim.run(until=self.sim.now + duration)

"""Unit tests for the YCSB and TPC-C workload generators."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.ledger.kvstore import KVStateMachine
from repro.ledger.tpcc_state import TPCCStateMachine
from repro.sim.rng import SeededRng
from repro.workloads.base import available_workloads, make_workload
from repro.workloads.tpcc import TPCCWorkload
from repro.workloads.ycsb import YCSBWorkload
from repro.workloads.zipf import ZipfGenerator


class TestZipf:
    def test_values_within_range(self):
        gen = ZipfGenerator(1000, 0.9)
        rng = SeededRng(1)
        values = [gen.next(rng) for _ in range(500)]
        assert all(0 <= value < 1000 for value in values)

    def test_skew_prefers_small_indices(self):
        gen = ZipfGenerator(10_000, 0.99)
        rng = SeededRng(2)
        values = [gen.next(rng) for _ in range(2000)]
        head_fraction = sum(1 for value in values if value < 100) / len(values)
        assert head_fraction > 0.3

    def test_theta_zero_is_uniform(self):
        gen = ZipfGenerator(100, 0.0)
        rng = SeededRng(3)
        values = [gen.next(rng) for _ in range(2000)]
        head_fraction = sum(1 for value in values if value < 10) / len(values)
        assert 0.05 < head_fraction < 0.2

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            ZipfGenerator(0)
        with pytest.raises(WorkloadError):
            ZipfGenerator(10, 1.5)


class TestRegistry:
    def test_both_workloads_registered(self):
        assert set(available_workloads()) >= {"ycsb", "tpcc"}

    def test_make_workload_by_name(self):
        assert isinstance(make_workload("ycsb"), YCSBWorkload)
        assert isinstance(make_workload("tpcc", warehouses=1, items=10), TPCCWorkload)

    def test_unknown_workload_raises(self):
        with pytest.raises(WorkloadError):
            make_workload("graph500")


class TestYCSB:
    def test_default_record_count_matches_paper(self):
        assert YCSBWorkload().record_count == 600_000

    def test_pure_write_workload_generates_writes(self):
        workload = YCSBWorkload(record_count=1000, write_ratio=1.0)
        rng = SeededRng(4)
        txns = [workload.next_transaction(7, rng) for _ in range(50)]
        assert all(txn.operation == "ycsb_write" for txn in txns)
        assert all(txn.client_id == 7 for txn in txns)

    def test_mixed_workload_contains_reads(self):
        workload = YCSBWorkload(record_count=1000, write_ratio=0.2)
        rng = SeededRng(5)
        operations = {workload.next_transaction(1, rng).operation for _ in range(200)}
        assert operations == {"ycsb_write", "ycsb_read"}

    def test_transactions_execute_on_matching_state_machine(self):
        workload = YCSBWorkload(record_count=100)
        machine = workload.make_state_machine()
        assert isinstance(machine, KVStateMachine)
        rng = SeededRng(6)
        for _ in range(20):
            result = machine.apply(workload.next_transaction(1, rng))
            assert result.success

    def test_invalid_write_ratio_rejected(self):
        with pytest.raises(WorkloadError):
            YCSBWorkload(write_ratio=2.0)


class TestTPCC:
    def test_mix_contains_all_profiles(self):
        workload = TPCCWorkload(warehouses=2, items=100)
        rng = SeededRng(7)
        operations = {workload.next_transaction(1, rng).operation for _ in range(500)}
        assert operations == {
            "tpcc_new_order",
            "tpcc_payment",
            "tpcc_order_status",
            "tpcc_delivery",
            "tpcc_stock_level",
        }

    def test_new_order_dominates_with_payment(self):
        workload = TPCCWorkload(warehouses=2, items=100)
        rng = SeededRng(8)
        txns = [workload.next_transaction(1, rng) for _ in range(1000)]
        new_orders = sum(1 for txn in txns if txn.operation == "tpcc_new_order")
        payments = sum(1 for txn in txns if txn.operation == "tpcc_payment")
        assert 0.35 < new_orders / len(txns) < 0.55
        assert 0.33 < payments / len(txns) < 0.53

    def test_transactions_execute_on_matching_state_machine(self):
        workload = TPCCWorkload(warehouses=1, items=50)
        machine = workload.make_state_machine()
        assert isinstance(machine, TPCCStateMachine)
        rng = SeededRng(9)
        for _ in range(50):
            machine.apply(workload.next_transaction(1, rng))

    def test_invalid_warehouse_count_rejected(self):
        with pytest.raises(WorkloadError):
            TPCCWorkload(warehouses=0)

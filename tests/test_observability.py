"""Observability layer: trace recorder, exports, and traced end-to-end runs.

Covers the bounded-memory invariants of :class:`~repro.obs.trace.TraceRecorder`,
the three export round-trips (JSONL, Chrome trace, Prometheus), sim/live span
parity, the chaos recovery curve in the windowed time series, the warmup
accounting boundary, and the zero-perturbation guarantee (a traced simulation
is byte-identical to an untraced one).
"""

from __future__ import annotations

import json

import pytest

from repro.consensus.metrics import MetricsCollector
from repro.experiments.report import format_network_breakdown, format_phase_breakdown
from repro.experiments.runner import ExperimentSpec, run_experiment
from repro.faults.plan import chaos_preset
from repro.obs.export import (
    chrome_trace,
    parse_prometheus,
    prometheus_text,
    read_jsonl,
    write_jsonl,
    write_trace_bundle,
)
from repro.obs.trace import (
    EVENT_KINDS,
    PhaseBreakdown,
    TraceRecorder,
    TxnSpan,
    default_bucket_width,
)


class FakeClock:
    """Settable ``.now`` so recorder tests control time exactly."""

    def __init__(self) -> None:
        self.now = 0.0


class FakeBlock:
    def __init__(self, block_hash, txn_ids, view=1, slot=1):
        self.block_hash = block_hash
        self.view = view
        self.slot = slot
        self.transactions = [FakeTxn(txn_id) for txn_id in txn_ids]
        self.txn_count = len(txn_ids)


class FakeTxn:
    def __init__(self, txn_id):
        self.txn_id = txn_id


def traced_recorder(**kwargs) -> TraceRecorder:
    return TraceRecorder(clock=FakeClock(), **kwargs)


def drive_lifecycle(recorder: TraceRecorder, txn_id: int = 1) -> None:
    """Walk one transaction through the full canonical lifecycle."""
    clock = recorder.clock
    block = FakeBlock("b1", [txn_id], view=1)
    clock.now = 0.0
    recorder.txn_submitted(txn_id)
    clock.now = 0.001
    recorder.txn_mempool(txn_id)
    clock.now = 0.002
    recorder.block_proposed(block, mempool_depth=5, replica=0)
    clock.now = 0.003
    recorder.block_voted(1, 1, block, replica=1)
    clock.now = 0.004
    recorder.block_certified(None, block, replica=1)
    clock.now = 0.005
    recorder.block_speculated(block, replica=1)
    clock.now = 0.006
    recorder.txn_responded(txn_id, submitted_at=0.0, speculative=True)
    clock.now = 0.007
    recorder.block_committed(block, replica=1)


class TestTraceRecorder:
    def test_full_lifecycle_span_in_canonical_order(self):
        recorder = traced_recorder()
        drive_lifecycle(recorder)
        span = recorder.spans[1]
        assert span.signature() == EVENT_KINDS
        times = [span.events[kind] for kind in EVENT_KINDS]
        assert times == sorted(times)
        assert recorder.counts["responded-speculative"] == 1

    def test_span_sampling_is_head_capped_but_counters_stay_exact(self):
        recorder = traced_recorder(max_txns=3)
        for txn_id in range(10):
            recorder.txn_submitted(txn_id)
        assert len(recorder.spans) == 3
        assert recorder.counts["submitted"] == 10

    def test_warmup_excludes_early_spans_from_sampling(self):
        recorder = traced_recorder(warmup=1.0)
        recorder.clock.now = 0.5
        recorder.txn_submitted(1)
        recorder.clock.now = 1.0
        recorder.txn_submitted(2)
        assert 1 not in recorder.spans and 2 in recorder.spans
        assert recorder.counts["submitted"] == 2  # counters see everything

    def test_block_events_dedup_first_wins_across_replicas(self):
        recorder = traced_recorder()
        block = FakeBlock("b1", [1, 2], view=3)
        recorder.clock.now = 0.01
        recorder.block_committed(block, replica=0)
        recorder.clock.now = 0.02
        recorder.block_committed(block, replica=1)  # duplicate: ignored
        assert recorder.counts["committed"] == 2  # txn_count once, not twice
        commits = [e for e in recorder.events if e.kind == "committed"]
        assert len(commits) == 1 and commits[0].replica == 0

    def test_event_ring_is_bounded(self):
        recorder = traced_recorder(max_events=4)
        for index in range(10):
            recorder.block_committed(FakeBlock(f"b{index}", [index]))
        assert len(recorder.events) == 4
        assert recorder.events_seen == 10

    def test_view_entered_first_wins_and_tracks_highest(self):
        recorder = traced_recorder()
        recorder.view_entered(2, replica=0)
        recorder.view_entered(2, replica=1)  # same view from a follower
        recorder.view_entered(5, replica=0)
        assert recorder.highest_view == 5
        assert recorder.counts["view-entered"] == 2

    def test_timeline_fills_gaps_with_zero_rows(self):
        recorder = traced_recorder(bucket=0.1)
        recorder.clock.now = 0.05
        recorder.txn_submitted(1)
        recorder.txn_responded(1, submitted_at=0.0, speculative=False)
        recorder.clock.now = 0.45  # three empty buckets in between
        recorder.txn_submitted(2)
        recorder.txn_responded(2, submitted_at=0.4, speculative=False)
        rows = recorder.timeline()
        assert len(rows) == 5
        assert [row["completed"] for row in rows] == [1, 0, 0, 0, 1]
        assert all(row["tps"] == 0.0 for row in rows[1:4])

    def test_default_bucket_width_clamps(self):
        assert default_bucket_width(0.1) == pytest.approx(0.02)
        assert default_bucket_width(4.0) == pytest.approx(0.5)
        assert default_bucket_width(100.0) == pytest.approx(1.0)


class TestPhaseBreakdown:
    def test_speculation_lead_sign_is_signed(self):
        early = TxnSpan(1, {"submitted": 0.0, "responded": 0.3, "committed": 0.5})
        late = TxnSpan(2, {"submitted": 0.0, "responded": 0.7, "committed": 0.5})
        lead = PhaseBreakdown.from_spans([early]).speculation_lead_s
        lag = PhaseBreakdown.from_spans([late]).speculation_lead_s
        assert lead == pytest.approx(0.2)
        assert lag == pytest.approx(-0.2)

    def test_partial_spans_contribute_only_observed_pairs(self):
        partial = TxnSpan(1, {"submitted": 0.0, "mempool": 0.1})
        breakdown = PhaseBreakdown.from_spans([partial])
        assert [stat.name for stat in breakdown.phases] == ["submitted→mempool"]
        assert breakdown.spans_used == 1
        assert breakdown.response_s == 0.0  # total never observed

    def test_format_phase_breakdown_renders(self):
        recorder = traced_recorder()
        drive_lifecycle(recorder)
        text = format_phase_breakdown(recorder.phase_breakdown())
        assert "speculation lead" in text
        assert "submitted→responded" in text


class TestExports:
    def test_jsonl_roundtrip_preserves_everything(self, tmp_path):
        recorder = traced_recorder(bucket=0.1)
        drive_lifecycle(recorder)
        recorder.view_entered(4, replica=2)
        path = write_jsonl(recorder, str(tmp_path / "trace.jsonl"))
        restored = read_jsonl(path)
        assert restored.counts == recorder.counts
        assert restored.highest_view == recorder.highest_view
        assert restored.spans[1].events == recorder.spans[1].events
        assert [e.as_dict() for e in restored.events] == [
            e.as_dict() for e in recorder.events
        ]
        assert restored.to_records() == recorder.to_records()

    def test_jsonl_reader_skips_torn_tail(self, tmp_path):
        recorder = traced_recorder()
        drive_lifecycle(recorder)
        path = write_jsonl(recorder, str(tmp_path / "trace.jsonl"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "span", "txn_id"')  # interrupted write
        restored = read_jsonl(path)
        assert restored.counts == recorder.counts

    def test_chrome_trace_is_loadable_and_nonnegative(self):
        recorder = traced_recorder(bucket=0.1)
        drive_lifecycle(recorder)
        document = json.loads(json.dumps(chrome_trace(recorder)))
        events = document["traceEvents"]
        phases = [e for e in events if e["ph"] == "X"]
        assert len(phases) == len(EVENT_KINDS) - 1
        assert all(e["dur"] >= 0 for e in phases)
        assert {e["ph"] for e in events} >= {"X", "i", "C", "M"}
        counters = {e["name"] for e in events if e["ph"] == "C"}
        assert {"throughput_tps", "inflight", "current_view"} <= counters

    def test_chrome_trace_orders_reversed_phases_by_observed_time(self):
        # HotStuff-style span: committed before responded.  Slices must still
        # have non-negative durations.
        recorder = traced_recorder()
        recorder.spans[1] = TxnSpan(1, {"submitted": 0.0, "committed": 0.4, "responded": 0.9})
        phases = [e for e in chrome_trace(recorder)["traceEvents"] if e["ph"] == "X"]
        assert [e["name"] for e in phases] == ["submitted→committed", "committed→responded"]
        assert all(e["dur"] >= 0 for e in phases)

    def test_prometheus_roundtrip(self):
        recorder = traced_recorder()
        drive_lifecycle(recorder)
        samples = parse_prometheus(prometheus_text(recorder))
        assert samples[("repro_trace_events_total", frozenset({("kind", "submitted")}))] == 1.0
        assert samples[("repro_trace_spans_sampled", frozenset())] == 1.0
        key = (
            "repro_trace_phase_latency_seconds",
            frozenset({("phase", "submitted→responded"), ("stat", "mean")}),
        )
        assert samples[key] == pytest.approx(0.006)

    def test_bundle_writes_all_three_formats(self, tmp_path):
        recorder = traced_recorder()
        drive_lifecycle(recorder)
        paths = write_trace_bundle(recorder, str(tmp_path / "bundle"))
        assert set(paths) == {"jsonl", "chrome", "prometheus"}
        assert read_jsonl(paths["jsonl"]).counts == recorder.counts
        json.load(open(paths["chrome"]))
        assert parse_prometheus(open(paths["prometheus"]).read())


class TestTracedRuns:
    def test_tracing_does_not_perturb_the_simulation(self):
        base = dict(protocol="hotstuff-1", duration=0.3, seed=11)
        untraced = run_experiment(ExperimentSpec(**base))
        traced = run_experiment(ExperimentSpec(trace=True, **base))
        assert untraced.summary.as_dict() == traced.summary.as_dict()
        assert untraced.trace is None and traced.trace is not None

    def test_hotstuff1_speculative_response_beats_commit(self):
        result = run_experiment(
            ExperimentSpec(protocol="hotstuff-1", duration=0.3, trace=True)
        )
        breakdown = result.trace.phase_breakdown()
        assert breakdown.spans_used > 0
        assert breakdown.response_s < breakdown.commit_s
        assert breakdown.speculation_lead_s > 0
        row = result.to_row()
        assert row["spec_lead_ms"] > 0
        assert row["trace_resp_ms"] < row["trace_commit_ms"]

    def test_baseline_hotstuff_responds_after_commit(self):
        result = run_experiment(
            ExperimentSpec(protocol="hotstuff", duration=0.3, trace=True)
        )
        assert result.trace.phase_breakdown().speculation_lead_s < 0

    def test_sim_and_live_traces_share_the_span_structure(self):
        sim = run_experiment(
            ExperimentSpec(protocol="hotstuff-1", duration=0.3, trace=True)
        )
        from repro.live.deploy import run_live_experiment

        live = run_live_experiment(
            ExperimentSpec(
                protocol="hotstuff-1",
                mode="live",
                duration=20.0,
                warmup=0.05,
                view_timeout=0.05,
                trace=True,
            ),
            target_ops=150,
        )
        # Both substrates must observe the full canonical lifecycle on
        # (a majority of sim / at least some live) transactions; partial live
        # spans only ever drop a *suffix* or protocol-internal kinds, never
        # reorder them.
        assert sim.trace.span_signatures().get(EVENT_KINDS, 0) > 0
        assert live.trace.span_signatures().get(EVENT_KINDS, 0) > 0
        for signature in live.trace.span_signatures():
            ranks = [EVENT_KINDS.index(kind) for kind in signature]
            assert ranks == sorted(ranks)

    def test_chaos_timeline_shows_dip_and_recovery(self):
        plan = chaos_preset("blackout", n=4, at=0.3, down_for=0.1)
        result = run_experiment(
            ExperimentSpec(
                protocol="hotstuff-1",
                duration=1.0,
                faults=plan.to_dict(),
                trace=True,
                trace_bucket=0.05,
            )
        )
        rows = result.trace.timeline()
        completed = [row["completed"] for row in rows]
        assert len(completed) >= 10
        # Healthy before the blackout, a real dip during it, recovered after.
        dip = min(completed[1:-1])
        assert completed[0] > 0
        assert dip < 0.2 * max(completed)
        dip_index = completed.index(dip)
        assert max(completed[dip_index:]) > 0.5 * max(completed)

    def test_trace_params_ride_executor_requests(self):
        from repro.experiments.executor import execute_request
        from repro.experiments.spec import RunRequest

        record = execute_request(
            RunRequest(
                index=0,
                group=0,
                scenario="s",
                kind="scalability",
                protocol="hotstuff-1",
                params={"n": 4, "duration": 0.2, "warmup": 0.05, "trace": True},
                point={"n": 4},
                seed=1,
                repeat=0,
            )
        )
        assert record.row["spec_lead_ms"] > 0


class TestWarmupAccounting:
    def test_boundary_filters_on_submission_time(self):
        metrics = MetricsCollector(warmup=1.0)
        # Submitted during warmup, completed after: warmup traffic, excluded.
        metrics.record_completion(txn_id=1, submitted_at=0.9, completed_at=1.4, speculative=False)
        # Submitted exactly at the boundary: measured.
        metrics.record_completion(txn_id=2, submitted_at=1.0, completed_at=1.5, speculative=False)
        # Clearly post-warmup: measured.
        metrics.record_completion(txn_id=3, submitted_at=1.2, completed_at=1.8, speculative=False)
        assert metrics.completed_count == 2
        assert {s.txn_id for s in metrics.completed_after_warmup()} == {2, 3}
        assert metrics.average_latency() == pytest.approx((0.5 + 0.6) / 2)
        assert metrics.throughput(2.0) == pytest.approx(2.0)

    def test_close_window_ignores_teardown_completions(self):
        metrics = MetricsCollector()
        metrics.record_completion(txn_id=1, submitted_at=0.1, completed_at=0.5, speculative=False)
        metrics.close_window(1.0)
        metrics.record_completion(txn_id=2, submitted_at=0.9, completed_at=1.5, speculative=False)
        assert metrics.completed_count == 1
        assert len(metrics.samples) == 1


class TestMetricsBounds:
    def test_sample_reservoir_is_capped_but_counters_exact(self):
        metrics = MetricsCollector(max_samples=50)
        for index in range(500):
            metrics.record_completion(
                txn_id=index, submitted_at=index * 0.01, completed_at=index * 0.01 + 0.2,
                speculative=False,
            )
        assert len(metrics.samples) == 50
        assert metrics.completed_count == 500
        assert metrics.average_latency() == pytest.approx(0.2)
        # Percentiles come from the reservoir and stay in the true range.
        assert 0.0 < metrics.latency_percentile(0.5) <= 0.2 + 1e-9

    def test_duplicate_dedup_window_is_bounded(self):
        metrics = MetricsCollector()
        for index in range(10):
            metrics.record_completion(
                txn_id=7, submitted_at=0.0, completed_at=0.1, speculative=False
            )
        assert metrics.completed_count == 1
        assert len(metrics._committed_txn_ids) <= metrics.DEDUP_WINDOW


class TestNetworkBreakdownWire:
    def test_sim_stats_render_without_wire_columns(self):
        text = format_network_breakdown(
            {"messages_sent": 10, "messages_delivered": 10, "bytes_sent": 100}
        )
        assert "batch_writes" not in text
        assert "reconnects" not in text

    def test_live_stats_render_wire_counters_and_per_peer_reconnects(self):
        text = format_network_breakdown(
            {
                "messages_sent": 10,
                "messages_delivered": 10,
                "bytes_sent": 100,
                "batch_writes": 7,
                "batched_frames": 9,
                "reconnects": {1: 2, 3: 1},
            }
        )
        assert "batch_writes" in text and "batched_frames" in text
        assert "reconnects by peer: peer 1: 2, peer 3: 1" in text

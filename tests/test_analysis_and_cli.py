"""Tests for the analysis tools (model, charts, export) and the CLI."""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis.charts import ascii_bar_chart, ascii_line_chart
from repro.analysis.export import rows_to_csv, rows_to_json, write_rows
from repro.analysis.model import AnalyticalModel
from repro.cli import FIGURES, build_parser, main
from repro.consensus.config import ProtocolConfig


SAMPLE_ROWS = [
    {"protocol": "hotstuff", "n": 4, "throughput_tps": 100.0, "avg_latency_ms": 9.0},
    {"protocol": "hotstuff-1", "n": 4, "throughput_tps": 101.0, "avg_latency_ms": 5.0},
]


class TestAnalyticalModel:
    def make_model(self, n=32, batch=100):
        return AnalyticalModel(ProtocolConfig(n=n, batch_size=batch), hop_latency=0.0005)

    def test_latency_ordering_matches_half_phases(self):
        model = self.make_model()
        latencies = {
            protocol: model.predict(protocol).client_latency
            for protocol in ("hotstuff", "hotstuff-2", "hotstuff-1")
        }
        assert latencies["hotstuff-1"] < latencies["hotstuff-2"] < latencies["hotstuff"]

    def test_latency_ratio_roughly_five_ninths(self):
        model = self.make_model()
        ratio = model.latency_ratio("hotstuff-1", "hotstuff")
        assert 0.45 < ratio < 0.75

    def test_streamlined_throughput_equal_across_protocols(self):
        model = self.make_model()
        predictions = [model.predict(p).saturation_throughput for p in ("hotstuff", "hotstuff-2", "hotstuff-1")]
        assert max(predictions) == pytest.approx(min(predictions))

    def test_basic_variant_has_half_throughput(self):
        model = self.make_model()
        basic = model.predict("hotstuff-1-basic").saturation_throughput
        streamlined = model.predict("hotstuff-1").saturation_throughput
        assert basic == pytest.approx(streamlined / 2)

    def test_throughput_decreases_with_n(self):
        small = self.make_model(n=4).predict("hotstuff-1").saturation_throughput
        large = self.make_model(n=64).predict("hotstuff-1").saturation_throughput
        assert large < small

    def test_batching_saturates(self):
        model = self.make_model(n=8)
        batch = model.saturation_batch("hotstuff-1")
        assert 100 <= batch <= 1_000_000
        # Throughput gain from batch -> 2*batch at the saturation point is sub-linear.
        low = model.predict("hotstuff-1", batch).saturation_throughput
        high = model.predict("hotstuff-1", batch * 2).saturation_throughput
        assert high / low < 1.9

    def test_prediction_dict_has_units(self):
        data = self.make_model().predict("hotstuff-1").as_dict()
        assert {"view_duration_ms", "saturation_throughput_tps", "client_latency_ms"} <= set(data)
        assert data["knee_clients"] >= 16

    def test_model_predicts_simulated_order_of_magnitude(self):
        """The model should land within ~3x of the simulator for throughput."""
        from repro.experiments.runner import ExperimentSpec, run_experiment

        result = run_experiment(
            ExperimentSpec(protocol="hotstuff-1", n=4, batch_size=20, duration=0.2, warmup=0.05)
        )
        predicted = AnalyticalModel(
            ProtocolConfig(n=4, batch_size=20), hop_latency=0.0005
        ).predict("hotstuff-1")
        ratio = predicted.saturation_throughput / max(result.throughput, 1.0)
        assert 0.3 < ratio < 3.0


class TestCharts:
    def test_bar_chart_contains_labels_and_bars(self):
        chart = ascii_bar_chart(SAMPLE_ROWS, "protocol", "throughput_tps", title="tput")
        assert "tput" in chart
        assert "hotstuff-1" in chart
        assert "#" in chart

    def test_bar_chart_empty(self):
        assert "(no data)" in ascii_bar_chart([], "protocol", "x")

    def test_line_chart_renders_axes_and_legend(self):
        series = {"hotstuff-1": {4: 5.0, 32: 6.4}, "hotstuff": {4: 9.0, 32: 10.6}}
        chart = ascii_line_chart(series, title="latency")
        assert "latency" in chart
        assert "legend:" in chart
        assert "x: 4.0 .. 32.0" in chart

    def test_line_chart_empty(self):
        assert "(no data)" in ascii_line_chart({})


class TestExport:
    def test_csv_roundtrip_columns(self):
        text = rows_to_csv(SAMPLE_ROWS)
        header = text.splitlines()[0]
        assert header.split(",") == ["protocol", "n", "throughput_tps", "avg_latency_ms"]
        assert len(text.splitlines()) == 3

    def test_json_roundtrip(self):
        data = json.loads(rows_to_json(SAMPLE_ROWS))
        assert data[1]["protocol"] == "hotstuff-1"

    def test_write_rows_csv_and_json(self, tmp_path):
        csv_path = write_rows(SAMPLE_ROWS, str(tmp_path / "out.csv"))
        json_path = write_rows(SAMPLE_ROWS, str(tmp_path / "out.json"))
        assert os.path.exists(csv_path) and os.path.exists(json_path)
        assert "hotstuff-1" in open(csv_path).read()
        assert json.loads(open(json_path).read())[0]["n"] == 4


class TestCli:
    def test_parser_requires_a_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_every_figure_name_is_registered(self):
        expected = {
            "fig8-scalability",
            "fig8-batching",
            "fig8-geo-ycsb",
            "fig8-geo-tpcc",
            "fig9-delay",
            "fig9-geo",
            "fig10-slowness",
            "fig10-tailfork",
            "fig10-rollback",
            "latency-breakdown",
            "ablation-slotting",
            "chaos-recovery",
            "chaos-fuzz",
            "snapshot-recovery",
        }
        assert set(FIGURES) == expected

    def test_run_command_prints_summary(self, capsys):
        exit_code = main(
            ["run", "--protocol", "hotstuff-1", "--replicas", "4", "--batch", "10",
             "--duration", "0.15", "--warmup", "0.03"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "hotstuff-1" in captured.out
        assert "throughput_tps" in captured.out

    def test_predict_command_prints_model(self, capsys):
        exit_code = main(["predict", "--replicas", "16", "--batch", "100"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Analytic model" in captured.out
        assert "hotstuff-1" in captured.out

    def test_compare_command_runs_all_protocols(self, capsys):
        exit_code = main(
            ["compare", "--replicas", "4", "--batch", "10", "--duration", "0.15", "--warmup", "0.03"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        for protocol in ("hotstuff", "hotstuff-2", "hotstuff-1", "hotstuff-1-slotting"):
            assert protocol in captured.out

    def test_figure_command_exports_rows(self, tmp_path, capsys):
        out = str(tmp_path / "rows.json")
        exit_code = main(["figure", "latency-breakdown", "--duration", "0.15", "--out", out])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert os.path.exists(out)
        assert "latency-breakdown" in captured.out

    def test_figure_command_with_repeats_adds_aggregate_columns(self, tmp_path, capsys):
        out = str(tmp_path / "rows.json")
        exit_code = main(
            ["figure", "ablation-slotting", "--duration", "0.2", "--repeats", "2",
             "--jobs", "2", "--seed", "3", "--out", out]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "±" in captured.out
        rows = json.loads(open(out).read())
        assert all(row["repeats"] == 2 for row in rows)
        assert "avg_latency_ms_std" in rows[0]

    def test_grid_command_lists_runs_without_executing(self, capsys):
        exit_code = main(["grid", "fig8-scalability", "--repeats", "2"])
        captured = capsys.readouterr()
        assert exit_code == 0
        # quick grid: 3 replica counts x 4 protocols x 2 repeats
        assert "24 runs" in captured.out
        assert "seed" in captured.out

    def test_suite_command_runs_config_file(self, tmp_path, capsys):
        config = {
            "name": "smoke",
            "scenarios": [
                {
                    "name": "tiny-scalability",
                    "kind": "scalability",
                    "protocols": ["hotstuff-1"],
                    "axes": {"n": [4]},
                    "params": {"batch_size": 10, "duration": 0.15, "warmup": 0.03},
                }
            ],
        }
        path = tmp_path / "suite.json"
        path.write_text(json.dumps(config))
        out_dir = str(tmp_path / "results")
        exit_code = main(
            ["suite", "--config", str(path), "--out-dir", out_dir, "--format", "csv"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "tiny-scalability" in captured.out
        assert os.path.exists(os.path.join(out_dir, "tiny-scalability.csv"))

    def test_suite_command_rejects_unknown_figure(self, capsys):
        exit_code = main(["suite", "fig99-bogus"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "unknown figure" in captured.err

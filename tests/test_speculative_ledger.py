"""Unit tests for the speculative ledger (global/local ledger + rollback)."""

from __future__ import annotations

import pytest

from repro.errors import SpeculationError
from repro.ledger.block import Block
from repro.ledger.kvstore import KVStateMachine
from repro.ledger.speculative import SpeculativeLedger

from tests.conftest import build_chain, make_txn


def fork_of(block_store, parent, view, value="fork"):
    """Create a sibling block extending *parent* with one conflicting write."""
    txn = make_txn(view * 1000, key="contended", value=value)
    fork = Block.build(view=view, slot=1, parent_hash=parent.block_hash, proposer=3, transactions=[txn])
    block_store.add(fork)
    return fork


class TestCommit:
    def test_commit_chain_executes_and_appends(self, spec_ledger, block_store):
        blocks = build_chain(block_store, 3, txns_per_block=2)
        outcomes = spec_ledger.commit_chain(blocks[-1])
        assert [o.block.view for o in outcomes] == [1, 2, 3]
        assert spec_ledger.committed.committed_txn_count == 6
        assert spec_ledger.committed_head_hash == blocks[-1].block_hash

    def test_commit_is_idempotent(self, spec_ledger, block_store):
        blocks = build_chain(block_store, 1)
        spec_ledger.commit_chain(blocks[0])
        assert spec_ledger.commit_chain(blocks[0]) == []

    def test_commit_refuses_fork_of_committed_chain(self, spec_ledger, block_store):
        blocks = build_chain(block_store, 2)
        spec_ledger.commit_chain(blocks[1])
        fork = fork_of(block_store, blocks[0], view=9)
        with pytest.raises(SpeculationError):
            spec_ledger.commit_chain(fork)

    def test_commit_of_speculated_block_is_promoted_without_reexecution(self, spec_ledger, block_store):
        blocks = build_chain(block_store, 2)
        spec_ledger.commit_chain(blocks[0])
        spec_ledger.speculate(blocks[1])
        digest_after_speculation = spec_ledger.state_digest()
        outcome = spec_ledger.commit(blocks[1])
        assert outcome.was_speculated
        assert spec_ledger.state_digest() == digest_after_speculation
        assert spec_ledger.is_committed(blocks[1].block_hash)


class TestSpeculation:
    def test_prefix_rule_blocks_speculation_on_uncommitted_prefix(self, spec_ledger, block_store):
        blocks = build_chain(block_store, 2)
        with pytest.raises(SpeculationError):
            spec_ledger.speculate(blocks[1])

    def test_speculation_after_prefix_committed(self, spec_ledger, block_store):
        blocks = build_chain(block_store, 2)
        spec_ledger.commit_chain(blocks[0])
        results = spec_ledger.speculate(blocks[1])
        assert len(results) == 1
        assert spec_ledger.is_speculated(blocks[1].block_hash)
        assert not spec_ledger.is_committed(blocks[1].block_hash)

    def test_speculation_is_idempotent(self, spec_ledger, block_store):
        blocks = build_chain(block_store, 1)
        first = spec_ledger.speculate(blocks[0])
        second = spec_ledger.speculate(blocks[0])
        assert first == second
        assert spec_ledger.speculated_block_count == 1

    def test_speculative_head_tracks_suffix(self, spec_ledger, block_store):
        blocks = build_chain(block_store, 1)
        assert spec_ledger.speculative_head_hash == spec_ledger.committed_head_hash
        spec_ledger.speculate(blocks[0])
        assert spec_ledger.speculative_head_hash == blocks[0].block_hash


class TestRollback:
    def test_conflicting_speculation_triggers_rollback(self, spec_ledger, block_store):
        blocks = build_chain(block_store, 1, txns_per_block=1)
        machine_digest_before = spec_ledger.state_digest()
        spec_ledger.speculate(blocks[0])
        fork = fork_of(block_store, block_store.genesis, view=5)
        spec_ledger.speculate(fork)
        assert spec_ledger.rollback_count == 1
        assert spec_ledger.is_speculated(fork.block_hash)
        assert not spec_ledger.is_speculated(blocks[0].block_hash)
        # State must reflect only the fork's effects now.
        assert spec_ledger.state_digest() != machine_digest_before

    def test_rollback_restores_state_machine_exactly(self, block_store):
        machine = KVStateMachine()
        ledger = SpeculativeLedger(machine, block_store)
        blocks = build_chain(block_store, 1, txns_per_block=3)
        digest_before = machine.state_digest()
        ledger.speculate(blocks[0])
        rolled_back = ledger.rollback_to_committed_head()
        assert [b.block_hash for b in rolled_back] == [blocks[0].block_hash]
        assert machine.state_digest() == digest_before
        assert ledger.rolled_back_txns == 3

    def test_rollback_if_conflicting_keeps_extending_blocks(self, spec_ledger, block_store):
        blocks = build_chain(block_store, 2)
        spec_ledger.commit_chain(blocks[0])
        spec_ledger.speculate(blocks[1])
        child = Block.build(3, 1, blocks[1].block_hash, 0, [make_txn(5)])
        block_store.add(child)
        assert spec_ledger.rollback_if_conflicting(child) == []
        assert spec_ledger.is_speculated(blocks[1].block_hash)

    def test_commit_of_conflicting_block_rolls_back_suffix(self, spec_ledger, block_store):
        blocks = build_chain(block_store, 1)
        spec_ledger.speculate(blocks[0])
        fork = fork_of(block_store, block_store.genesis, view=6)
        outcome = spec_ledger.commit(fork)
        assert not outcome.was_speculated
        assert spec_ledger.rollback_count == 1
        assert spec_ledger.is_committed(fork.block_hash)

    def test_rollback_with_empty_suffix_is_noop(self, spec_ledger):
        assert spec_ledger.rollback_to_committed_head() == []
        assert spec_ledger.rollback_count == 0


class TestAppendixA2Scenario:
    """The rollback scenario from Appendix A.2, replayed against the ledger."""

    def test_withheld_certificate_forces_rollback_then_convergence(self, block_store):
        machine = KVStateMachine()
        ledger = SpeculativeLedger(machine, block_store)
        genesis = block_store.genesis
        # L1 proposes B1; only f replicas see P(1) and speculate B1.
        block_b1 = Block.build(1, 1, genesis.block_hash, 1, [make_txn(1, key="contended", value="b1")])
        block_store.add(block_b1)
        ledger.speculate(block_b1)
        assert ledger.is_speculated(block_b1.block_hash)
        # L2 ignores P(1) and proposes conflicting B2 extending genesis; P(2) forms.
        block_b2 = Block.build(2, 1, genesis.block_hash, 2, [make_txn(2, key="contended", value="b2")])
        block_store.add(block_b2)
        ledger.speculate(block_b2)
        # The replica rolled back B1 and now reflects B2 only.
        assert ledger.rollback_count == 1
        assert not ledger.is_speculated(block_b1.block_hash)
        assert machine.read("contended").startswith("b2")
        # Eventually B2 commits; the ledger promotes the speculation.
        outcome = ledger.commit(block_b2)
        assert outcome.was_speculated
        assert ledger.is_committed(block_b2.block_hash)

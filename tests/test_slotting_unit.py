"""Unit tests for the slotting design: SafeSlot cases, carry blocks, trusted leaders."""

from __future__ import annotations

import pytest

from repro.consensus.certificates import CertKind
from repro.consensus.messages import NewView, Propose, Reject
from repro.core.slotting import SlottedHotStuff1Replica
from repro.ledger.block import Block
from repro.types import NULL_DIGEST

from tests.conftest import make_txn
from tests.helpers import ReplicaHarness


@pytest.fixture
def harness():
    """A standalone slotted replica (id 0) in a 4-replica configuration."""
    return ReplicaHarness(SlottedHotStuff1Replica, replica_id=0, n=4)


def add_block(harness, view, slot, parent, txn_seed=0, carry_hash=NULL_DIGEST):
    block = Block.build(
        view=view,
        slot=slot,
        parent_hash=parent.block_hash,
        proposer=view % 4,
        transactions=[make_txn(txn_seed + view * 10 + slot)],
        carry_hash=carry_hash,
    )
    harness.replica.block_store.add(block)
    return block


class TestSafeSlot:
    def test_case1_first_slot_extends_new_view_cert_formed_now(self, harness):
        genesis = harness.replica.block_store.genesis
        prev_block = add_block(harness, 1, 3, genesis)
        cert = harness.certificate(CertKind.NEW_VIEW, prev_block, formed_in_view=2)
        block = add_block(harness, 2, 1, prev_block)
        proposal = Propose(view=2, slot=1, block=block, justify=cert)
        assert harness.replica._safe_slot(proposal)

    def test_case3_first_slot_with_carry_over_new_slot_cert(self, harness):
        genesis = harness.replica.block_store.genesis
        certified = add_block(harness, 1, 3, genesis)
        cert = harness.certificate(CertKind.NEW_SLOT, certified)
        carry = add_block(harness, 1, 4, certified)
        block = add_block(harness, 2, 1, carry, carry_hash=carry.block_hash)
        proposal = Propose(view=2, slot=1, block=block, justify=cert, carry_hash=carry.block_hash)
        assert harness.replica._safe_slot(proposal)

    def test_first_slot_over_new_slot_cert_without_carry_is_rejected(self, harness):
        genesis = harness.replica.block_store.genesis
        certified = add_block(harness, 1, 3, genesis)
        cert = harness.certificate(CertKind.NEW_SLOT, certified)
        block = add_block(harness, 2, 1, certified)
        proposal = Propose(view=2, slot=1, block=block, justify=cert)
        assert not harness.replica._safe_slot(proposal)

    def test_case2_stale_new_view_cert_requires_matching_carry(self, harness):
        genesis = harness.replica.block_store.genesis
        certified = add_block(harness, 1, 2, genesis)
        stale_cert = harness.certificate(CertKind.NEW_VIEW, certified, formed_in_view=2)
        carry = add_block(harness, 2, 1, certified)
        block = add_block(harness, 3, 1, carry, carry_hash=carry.block_hash)
        proposal = Propose(view=3, slot=1, block=block, justify=stale_cert, carry_hash=carry.block_hash)
        assert harness.replica._safe_slot(proposal)
        # Without the carry the same proposal is unsafe.
        bad_block = add_block(harness, 3, 1, certified, txn_seed=500)
        bad = Propose(view=3, slot=1, block=bad_block, justify=stale_cert)
        assert not harness.replica._safe_slot(bad)

    def test_case4_intra_view_slots_extend_previous_slot(self, harness):
        genesis = harness.replica.block_store.genesis
        slot1 = add_block(harness, 2, 1, genesis)
        cert = harness.certificate(CertKind.NEW_SLOT, slot1)
        slot2 = add_block(harness, 2, 2, slot1)
        proposal = Propose(view=2, slot=2, block=slot2, justify=cert)
        assert harness.replica._safe_slot(proposal)

    def test_case4_rejects_skipped_slot(self, harness):
        genesis = harness.replica.block_store.genesis
        slot1 = add_block(harness, 2, 1, genesis)
        cert = harness.certificate(CertKind.NEW_SLOT, slot1)
        slot3 = add_block(harness, 2, 3, slot1)
        proposal = Propose(view=2, slot=3, block=slot3, justify=cert)
        assert not harness.replica._safe_slot(proposal)

    def test_structural_check_parent_must_match_justify_or_carry(self, harness):
        genesis = harness.replica.block_store.genesis
        slot1 = add_block(harness, 2, 1, genesis)
        cert = harness.certificate(CertKind.NEW_SLOT, slot1)
        unrelated = add_block(harness, 1, 5, genesis, txn_seed=900)
        wrong_parent = add_block(harness, 2, 2, unrelated, txn_seed=901)
        proposal = Propose(view=2, slot=2, block=wrong_parent, justify=cert)
        assert not harness.replica._safe_slot(proposal)

    def test_bootstrap_first_slot_over_genesis_cert_is_safe(self, harness):
        genesis = harness.replica.block_store.genesis
        block = add_block(harness, 1, 1, genesis)
        proposal = Propose(view=1, slot=1, block=block, justify=harness.replica.genesis_cert)
        assert harness.replica._safe_slot(proposal)


class TestCarryBlocks:
    def test_find_carry_block_after_new_slot_cert(self, harness):
        genesis = harness.replica.block_store.genesis
        certified = add_block(harness, 1, 3, genesis)
        cert = harness.certificate(CertKind.NEW_SLOT, certified)
        carry = add_block(harness, 1, 4, certified)
        assert harness.replica._find_carry_block(cert).block_hash == carry.block_hash

    def test_find_carry_block_after_new_view_cert(self, harness):
        genesis = harness.replica.block_store.genesis
        certified = add_block(harness, 1, 2, genesis)
        cert = harness.certificate(CertKind.NEW_VIEW, certified, formed_in_view=2)
        carry = add_block(harness, 2, 1, certified)
        assert harness.replica._find_carry_block(cert).block_hash == carry.block_hash

    def test_certified_child_is_not_carried(self, harness):
        genesis = harness.replica.block_store.genesis
        certified = add_block(harness, 1, 3, genesis)
        cert = harness.certificate(CertKind.NEW_SLOT, certified)
        child = add_block(harness, 1, 4, certified)
        child_cert = harness.certificate(CertKind.NEW_SLOT, child)
        harness.replica.record_certificate(child_cert)
        assert harness.replica._find_carry_block(cert) is None

    def test_no_carry_for_genesis_certificate(self, harness):
        assert harness.replica._find_carry_block(harness.replica.genesis_cert) is None


class TestTrustedLeaders:
    def make_new_view_from_previous_leader(self, harness, view):
        """Build a NewView message from the previous leader with a fresh NEW_SLOT cert."""
        genesis = harness.replica.block_store.genesis
        certified = add_block(harness, view - 1, 2, genesis)
        cert = harness.certificate(CertKind.NEW_SLOT, certified)
        previous_leader = harness.leaders.leader_of(view - 1)
        return NewView(
            view=view,
            voter=previous_leader,
            high_cert=cert,
            share=None,
            voted_block_hash=certified.block_hash,
            highest_voted_hash=certified.block_hash,
        ), previous_leader

    def test_trusted_previous_leader_enables_fast_path(self, harness):
        message, previous_leader = self.make_new_view_from_previous_leader(harness, view=4)
        assert harness.replica._trusted_fast_path(message, previous_leader)

    def test_distrusted_leader_disables_fast_path(self, harness):
        message, previous_leader = self.make_new_view_from_previous_leader(harness, view=4)
        harness.replica.distrusted_leaders.add(previous_leader)
        assert not harness.replica._trusted_fast_path(message, previous_leader)

    def test_stale_certificate_does_not_enable_fast_path(self, harness):
        genesis = harness.replica.block_store.genesis
        old_block = add_block(harness, 1, 1, genesis)
        old_cert = harness.certificate(CertKind.NEW_SLOT, old_block)
        previous_leader = harness.leaders.leader_of(3)
        message = NewView(view=4, voter=previous_leader, high_cert=old_cert, share=None)
        assert not harness.replica._trusted_fast_path(message, previous_leader)

    def test_reject_with_concealed_certificate_marks_distrust(self, harness):
        # The replica is the leader of view 4 (views 0, 4, 8 map to replica 0).
        genesis = harness.replica.block_store.genesis
        harness.replica.pacemaker.start(1)
        harness.replica.pacemaker.force_enter(4)
        concealed_block = add_block(harness, 3, 2, genesis)
        concealed_cert = harness.certificate(CertKind.NEW_SLOT, concealed_block)
        reject = Reject(view=4, slot=1, voter=2, high_cert=concealed_cert)
        harness.replica.handle_reject(reject, sender=2)
        assert harness.leaders.leader_of(3) in harness.replica.distrusted_leaders

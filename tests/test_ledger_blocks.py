"""Unit tests for transactions, blocks, the block store and the committed ledger."""

from __future__ import annotations

import pytest

from repro.errors import ForkError, LedgerError, UnknownBlockError
from repro.ledger.block import Block, make_genesis_block
from repro.ledger.blockstore import BlockStore
from repro.ledger.ledger import CommittedLedger
from repro.ledger.transaction import Transaction

from tests.conftest import build_chain, make_txn


class TestTransaction:
    def test_create_assigns_unique_ids(self):
        a = Transaction.create(1, "noop")
        b = Transaction.create(1, "noop")
        assert a.txn_id != b.txn_id

    def test_explicit_id_is_respected(self):
        txn = Transaction.create(2, "noop", txn_id=777)
        assert txn.txn_id == 777

    def test_digest_depends_on_payload(self):
        a = Transaction.create(1, "ycsb_write", {"key": "k", "value": "1"}, txn_id=1)
        b = Transaction.create(1, "ycsb_write", {"key": "k", "value": "2"}, txn_id=1)
        assert a.digest() != b.digest()


class TestBlock:
    def test_build_computes_stable_hash(self):
        genesis = make_genesis_block()
        txns = [make_txn(1)]
        a = Block.build(1, 1, genesis.block_hash, 0, txns)
        b = Block.build(1, 1, genesis.block_hash, 0, txns)
        assert a.block_hash == b.block_hash

    def test_hash_changes_with_content(self):
        genesis = make_genesis_block()
        a = Block.build(1, 1, genesis.block_hash, 0, [make_txn(1)])
        b = Block.build(1, 1, genesis.block_hash, 0, [make_txn(2)])
        assert a.block_hash != b.block_hash

    def test_lexicographic_ordering_by_view_then_slot(self):
        genesis = make_genesis_block()
        low = Block.build(1, 4, genesis.block_hash, 0)
        high = Block.build(2, 1, genesis.block_hash, 0)
        same_view = Block.build(2, 2, genesis.block_hash, 0)
        assert low.ordered_before(high)
        assert high.ordered_before(same_view)

    def test_genesis_block_is_deterministic(self):
        assert make_genesis_block().block_hash == make_genesis_block().block_hash
        assert make_genesis_block().is_genesis


class TestBlockStore:
    def test_contains_genesis(self, block_store):
        assert block_store.genesis.block_hash in block_store

    def test_add_and_get(self, block_store):
        [block] = build_chain(block_store, 1)
        assert block_store.get(block.block_hash) is block

    def test_get_unknown_raises(self, block_store):
        with pytest.raises(UnknownBlockError):
            block_store.get("f" * 64)

    def test_add_is_idempotent(self, block_store):
        [block] = build_chain(block_store, 1)
        assert block_store.add(block) is block
        assert len(block_store) == 2  # genesis + block

    def test_ancestors_walk_back_to_genesis(self, block_store):
        blocks = build_chain(block_store, 3)
        ancestors = block_store.ancestors(blocks[-1].block_hash)
        assert [b.view for b in ancestors] == [2, 1, 0]

    def test_extends_transitively(self, block_store):
        blocks = build_chain(block_store, 4)
        assert block_store.extends(blocks[3].block_hash, blocks[0].block_hash)
        assert not block_store.extends(blocks[0].block_hash, blocks[3].block_hash)

    def test_block_does_not_extend_itself(self, block_store):
        blocks = build_chain(block_store, 1)
        assert not block_store.extends(blocks[0].block_hash, blocks[0].block_hash)

    def test_conflicts_for_siblings(self, block_store):
        blocks = build_chain(block_store, 2)
        fork = Block.build(5, 1, blocks[0].block_hash, 3, [make_txn(999)])
        block_store.add(fork)
        assert block_store.conflicts(fork.block_hash, blocks[1].block_hash)
        assert not block_store.conflicts(blocks[0].block_hash, blocks[1].block_hash)

    def test_common_ancestor_of_forked_branches(self, block_store):
        blocks = build_chain(block_store, 2)
        fork = Block.build(7, 1, blocks[0].block_hash, 3)
        block_store.add(fork)
        ancestor = block_store.common_ancestor(fork.block_hash, blocks[1].block_hash)
        assert ancestor.block_hash == blocks[0].block_hash

    def test_path_between_is_ordered_oldest_first(self, block_store):
        blocks = build_chain(block_store, 3)
        path = block_store.path_between(block_store.genesis.block_hash, blocks[2].block_hash)
        assert [b.view for b in path] == [1, 2, 3]

    def test_path_between_unrelated_raises(self, block_store):
        blocks = build_chain(block_store, 2)
        fork = Block.build(9, 1, blocks[0].block_hash, 3)
        block_store.add(fork)
        with pytest.raises(LedgerError):
            block_store.path_between(blocks[1].block_hash, fork.block_hash)

    def test_children_of_tracks_forks(self, block_store):
        blocks = build_chain(block_store, 1)
        fork = Block.build(4, 1, block_store.genesis.block_hash, 2)
        block_store.add(fork)
        children = block_store.children_of(block_store.genesis.block_hash)
        assert {child.block_hash for child in children} == {blocks[0].block_hash, fork.block_hash}


class TestCommittedLedger:
    def test_append_in_order(self, block_store):
        blocks = build_chain(block_store, 3)
        ledger = CommittedLedger()
        positions = [ledger.append(block) for block in blocks]
        assert positions == [0, 1, 2]
        assert ledger.head.block_hash == blocks[-1].block_hash
        assert len(ledger) == 3

    def test_append_duplicate_is_idempotent(self, block_store):
        blocks = build_chain(block_store, 1)
        ledger = CommittedLedger()
        assert ledger.append(blocks[0]) == 0
        assert ledger.append(blocks[0]) == 0
        assert len(ledger) == 1

    def test_fork_rejected(self, block_store):
        blocks = build_chain(block_store, 2)
        fork = Block.build(8, 1, blocks[0].block_hash, 3)
        ledger = CommittedLedger()
        ledger.append(blocks[0])
        ledger.append(blocks[1])
        with pytest.raises(ForkError):
            ledger.append(fork)

    def test_committed_txn_count(self, block_store):
        blocks = build_chain(block_store, 2, txns_per_block=3)
        ledger = CommittedLedger()
        for block in blocks:
            ledger.append(block)
        assert ledger.committed_txn_count == 6

    def test_ledger_digest_changes_with_content(self, block_store):
        blocks = build_chain(block_store, 2)
        a = CommittedLedger()
        a.append(blocks[0])
        b = CommittedLedger()
        b.append(blocks[0])
        assert a.ledger_digest() == b.ledger_digest()
        a.append(blocks[1])
        assert a.ledger_digest() != b.ledger_digest()

"""Unit tests for the Prefix Speculation and No-Gap rules (§3, Appendix A)."""

from __future__ import annotations

import pytest

from repro.core.speculation import (
    SpeculationGuard,
    no_gap_basic,
    no_gap_slotted,
    no_gap_streamlined,
)
from repro.ledger.block import Block

from tests.conftest import build_chain, make_txn


class TestNoGapRules:
    def test_streamlined_requires_immediately_preceding_view(self, block_store):
        blocks = build_chain(block_store, 3)
        assert no_gap_streamlined(blocks[1], proposal_view=3)
        assert not no_gap_streamlined(blocks[0], proposal_view=3)
        assert not no_gap_streamlined(blocks[2], proposal_view=3)

    def test_basic_requires_current_view_certificate(self, block_store):
        blocks = build_chain(block_store, 2)
        assert no_gap_basic(blocks[1], certificate_view=2, current_view=2)
        assert not no_gap_basic(blocks[1], certificate_view=2, current_view=3)
        assert not no_gap_basic(blocks[0], certificate_view=2, current_view=2)

    def test_slotted_accepts_previous_slot_same_view(self, block_store):
        parent = block_store.genesis
        slot2 = Block.build(4, 2, parent.block_hash, 0)
        assert no_gap_slotted(slot2, proposal_view=4, proposal_slot=3)
        assert not no_gap_slotted(slot2, proposal_view=4, proposal_slot=4)

    def test_slotted_accepts_previous_view_on_first_slot(self, block_store):
        last_slot = Block.build(4, 7, block_store.genesis.block_hash, 0)
        assert no_gap_slotted(last_slot, proposal_view=5, proposal_slot=1)
        assert not no_gap_slotted(last_slot, proposal_view=6, proposal_slot=1)


class TestSpeculationGuard:
    def test_allows_speculation_when_both_rules_hold(self, spec_ledger, block_store):
        blocks = build_chain(block_store, 2)
        spec_ledger.commit_chain(blocks[0])
        guard = SpeculationGuard(spec_ledger)
        decision = guard.check_streamlined(blocks[1], proposal_view=3)
        assert decision
        assert decision.reason == "ok"
        assert guard.allowed_count == 1

    def test_refuses_when_prefix_not_committed(self, spec_ledger, block_store):
        blocks = build_chain(block_store, 2)
        guard = SpeculationGuard(spec_ledger)
        decision = guard.check_streamlined(blocks[1], proposal_view=3)
        assert not decision
        assert decision.reason == "prefix-not-committed"
        assert guard.refusals["prefix-not-committed"] == 1

    def test_refuses_when_view_gap_exists(self, spec_ledger, block_store):
        blocks = build_chain(block_store, 2)
        spec_ledger.commit_chain(blocks[0])
        guard = SpeculationGuard(spec_ledger)
        decision = guard.check_streamlined(blocks[1], proposal_view=5)
        assert not decision
        assert decision.reason == "no-gap"

    def test_refuses_already_committed_block(self, spec_ledger, block_store):
        blocks = build_chain(block_store, 2)
        spec_ledger.commit_chain(blocks[1])
        guard = SpeculationGuard(spec_ledger)
        decision = guard.check_streamlined(blocks[1], proposal_view=3)
        assert not decision
        assert decision.reason == "already-committed"

    def test_slotted_guard_uses_slotted_no_gap(self, spec_ledger, block_store):
        blocks = build_chain(block_store, 1)
        guard = SpeculationGuard(spec_ledger)
        # Same view, previous slot: allowed once prefix (genesis) is committed.
        slot_block = Block.build(2, 3, block_store.genesis.block_hash, 0, [make_txn(1)])
        block_store.add(slot_block)
        assert guard.check_slotted(slot_block, proposal_view=2, proposal_slot=4)
        assert not guard.check_slotted(slot_block, proposal_view=2, proposal_slot=6)


class TestAppendixA1PrefixDilemma:
    """Replay of the Appendix A.1 schedule: the rules must block unsafe speculation."""

    def test_unsafe_prefix_speculation_is_blocked(self, spec_ledger, block_store):
        genesis = block_store.genesis
        guard = SpeculationGuard(spec_ledger)
        # View 1: B1 extends genesis; its certificate P(1) is withheld from us.
        block_b1 = Block.build(1, 1, genesis.block_hash, 1, [make_txn(1)])
        block_store.add(block_b1)
        # View 3: a Byzantine leader proposes B3 extending P(1); we receive P(3)
        # and are asked to speculate B3 *and its prefix B1*.
        block_b3 = Block.build(3, 1, block_b1.block_hash, 3, [make_txn(3)])
        block_store.add(block_b3)
        # The Prefix Speculation rule forbids it: B1 (the prefix) is not committed.
        decision = guard.check_streamlined(block_b3, proposal_view=4)
        assert not decision
        assert decision.reason == "prefix-not-committed"

    def test_no_gap_violation_is_blocked(self, spec_ledger, block_store):
        genesis = block_store.genesis
        guard = SpeculationGuard(spec_ledger)
        block_b1 = Block.build(1, 1, genesis.block_hash, 1, [make_txn(1)])
        block_store.add(block_b1)
        # A certificate P(1) formed in view 1 reaches us only in view 5: there is
        # a view gap, so a higher conflicting certificate might exist (it does,
        # in the Appendix A schedule) and speculation must be refused.
        decision = guard.check_streamlined(block_b1, proposal_view=5)
        assert not decision
        assert decision.reason == "no-gap"

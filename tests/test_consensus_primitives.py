"""Unit tests for configuration, costs, leader election, mempool, metrics and certificates."""

from __future__ import annotations

import pytest

from repro.consensus.certificates import CertificateAuthority, CertKind, Certificate
from repro.consensus.config import ProtocolConfig
from repro.consensus.costs import CostModel
from repro.consensus.leader import RoundRobinLeaderElection
from repro.consensus.mempool import Mempool
from repro.consensus.metrics import MetricsCollector
from repro.errors import ConfigurationError, InvalidCertificateError
from repro.ledger.block import make_genesis_block

from tests.conftest import build_chain, certificate_for, make_txn


class TestProtocolConfig:
    def test_quorum_math_for_paper_sizes(self):
        for n, f in ((4, 1), (16, 5), (31, 10), (32, 10), (64, 21)):
            config = ProtocolConfig(n=n)
            assert config.f == f
            assert config.quorum == n - f
            assert config.epoch_length == f + 1

    def test_rejects_too_few_replicas(self):
        with pytest.raises(ConfigurationError):
            ProtocolConfig(n=3)

    def test_rejects_bad_batch_and_timers(self):
        with pytest.raises(ConfigurationError):
            ProtocolConfig(n=4, batch_size=0)
        with pytest.raises(ConfigurationError):
            ProtocolConfig(n=4, view_timeout=0)
        with pytest.raises(ConfigurationError):
            ProtocolConfig(n=4, delta=0)

    def test_describe_mentions_quorum_inputs(self):
        text = ProtocolConfig(n=16, batch_size=200).describe()
        assert "n=16" in text and "f=5" in text


class TestCostModel:
    def test_costs_scale_with_quorum_and_batch(self):
        costs = CostModel()
        assert costs.certificate_formation_cost(40) > costs.certificate_formation_cost(3)
        assert costs.proposal_cost(1000, 32) > costs.proposal_cost(100, 32)
        assert costs.proposal_cost(100, 64) > costs.proposal_cost(100, 4)
        assert costs.execution_cost(100, 1e-6) > 0
        assert costs.response_cost(100) > costs.response_cost(1)
        assert costs.vote_cost() > 0
        assert costs.proposal_validation_cost(40) > costs.proposal_validation_cost(3)


class TestLeaderElection:
    def test_round_robin_rotation(self):
        election = RoundRobinLeaderElection(4)
        assert [election.leader_of(view) for view in range(1, 6)] == [1, 2, 3, 0, 1]

    def test_custom_roster(self):
        election = RoundRobinLeaderElection(4, roster=[3, 2, 1, 0])
        assert election.leader_of(0) == 3
        assert election.is_leader(2, 1)

    def test_invalid_roster_rejected(self):
        with pytest.raises(ConfigurationError):
            RoundRobinLeaderElection(4, roster=[0, 1, 2, 2])

    def test_views_led_by(self):
        election = RoundRobinLeaderElection(4)
        assert election.views_led_by(1, 1, 8) == [1, 5]


class TestMempool:
    def test_fifo_batching(self):
        pool = Mempool()
        txns = [make_txn(i) for i in range(5)]
        for txn in txns:
            pool.add(txn)
        batch = pool.next_batch(3)
        assert [t.txn_id for t in batch] == [t.txn_id for t in txns[:3]]
        assert len(pool) == 2

    def test_duplicate_adds_ignored(self):
        pool = Mempool()
        txn = make_txn(1)
        assert pool.add(txn)
        assert not pool.add(txn)
        assert pool.total_submitted == 1

    def test_requeue_puts_transactions_at_head(self):
        pool = Mempool()
        first, second = make_txn(1), make_txn(2)
        pool.add(second)
        pool.requeue([first])
        assert [t.txn_id for t in pool.next_batch(2)] == [first.txn_id, second.txn_id]

    def test_committed_transactions_never_readmitted(self):
        pool = Mempool()
        txn = make_txn(1)
        pool.add(txn)
        pool.next_batch(1)
        pool.mark_committed([txn.txn_id])
        assert not pool.add(txn)
        pool.requeue([txn])
        assert len(pool) == 0
        assert pool.is_committed(txn.txn_id)

    def test_mark_committed_removes_pending_copy(self):
        pool = Mempool()
        txn = make_txn(3)
        pool.add(txn)
        pool.mark_committed([txn.txn_id])
        assert txn.txn_id not in pool


class TestMetrics:
    def test_throughput_and_latency_after_warmup(self):
        metrics = MetricsCollector(warmup=1.0)
        metrics.record_completion(1, submitted_at=0.2, completed_at=0.5, speculative=False)
        metrics.record_completion(2, submitted_at=1.0, completed_at=1.5, speculative=True)
        metrics.record_completion(3, submitted_at=1.2, completed_at=2.0, speculative=True)
        assert len(metrics.completed_after_warmup()) == 2
        assert metrics.throughput(duration=2.0) == pytest.approx(2.0)
        assert metrics.average_latency() == pytest.approx((0.5 + 0.8) / 2)
        assert metrics.latency_percentile(0.99) == pytest.approx(0.8)

    def test_duplicate_completion_ignored(self):
        metrics = MetricsCollector()
        metrics.record_completion(7, 0.0, 1.0, False)
        metrics.record_completion(7, 0.0, 2.0, False)
        assert len(metrics.samples) == 1

    def test_summary_contains_all_counters(self):
        metrics = MetricsCollector()
        metrics.record_completion(1, 0.0, 0.1, True)
        metrics.record_rollback(10)
        metrics.record_view_change()
        metrics.record_timeout()
        metrics.record_speculative_execution(5)
        metrics.record_consensus_commit(5)
        summary = metrics.summarize("hotstuff-1", duration=1.0)
        data = summary.as_dict()
        assert data["committed_txns"] == 1
        assert data["rollbacks"] == 1
        assert data["view_changes"] == 1
        assert data["timeouts"] == 1
        assert summary.speculative_executions == 5
        assert summary.consensus_commits == 5

    def test_empty_metrics_summary_is_zeroed(self):
        summary = MetricsCollector().summarize("hotstuff", duration=1.0)
        assert summary.committed_txns == 0
        assert summary.avg_latency == 0.0


class TestCertificates:
    def test_form_and_verify_prepare_certificate(self, authority4, config4, block_store):
        [block] = build_chain(block_store, 1)
        cert = certificate_for(authority4, config4, block)
        assert cert.kind is CertKind.PREPARE
        assert cert.block_hash == block.block_hash
        assert authority4.verify_certificate(cert)

    def test_too_few_votes_rejected(self, authority4, config4, block_store):
        [block] = build_chain(block_store, 1)
        shares = [
            authority4.create_vote(i, CertKind.PREPARE, block.view, block.slot, block.block_hash)
            for i in range(config4.quorum - 1)
        ]
        with pytest.raises(InvalidCertificateError):
            authority4.form_certificate(CertKind.PREPARE, block.view, block.slot, block.block_hash, shares)

    def test_votes_for_other_block_do_not_count(self, authority4, config4, block_store):
        blocks = build_chain(block_store, 2)
        shares = [
            authority4.create_vote(i, CertKind.PREPARE, blocks[0].view, 1, blocks[0].block_hash)
            for i in range(config4.quorum)
        ]
        with pytest.raises(InvalidCertificateError):
            authority4.form_certificate(CertKind.PREPARE, blocks[1].view, 1, blocks[1].block_hash, shares)

    def test_vote_kind_is_domain_separated(self, authority4, config4, block_store):
        [block] = build_chain(block_store, 1)
        slot_votes = [
            authority4.create_vote(i, CertKind.NEW_SLOT, block.view, block.slot, block.block_hash)
            for i in range(config4.quorum)
        ]
        with pytest.raises(InvalidCertificateError):
            authority4.form_certificate(CertKind.NEW_VIEW, block.view, block.slot, block.block_hash, slot_votes)

    def test_verify_vote_checks_statement(self, authority4, block_store):
        [block] = build_chain(block_store, 1)
        vote = authority4.create_vote(0, CertKind.PREPARE, block.view, block.slot, block.block_hash)
        assert authority4.verify_vote(vote, CertKind.PREPARE, block.view, block.slot, block.block_hash)
        assert not authority4.verify_vote(vote, CertKind.PREPARE, block.view + 1, block.slot, block.block_hash)

    def test_genesis_certificate_always_valid(self, authority4):
        cert = CertificateAuthority.genesis_certificate(make_genesis_block())
        assert cert.is_genesis
        assert authority4.verify_certificate(cert)

    def test_certificate_ordering_is_lexicographic(self, authority4, config4, block_store):
        blocks = build_chain(block_store, 2)
        low = certificate_for(authority4, config4, blocks[0])
        high = certificate_for(authority4, config4, blocks[1])
        assert high.is_higher_than(low)
        assert not low.is_higher_than(high)

    def test_timeout_certificate_roundtrip(self, authority4, config4):
        votes = [authority4.create_timeout_vote(i, view=9) for i in range(config4.quorum)]
        tc = authority4.form_timeout_certificate(9, votes)
        assert tc.kind is CertKind.TIMEOUT
        assert authority4.verify_certificate(tc)

    def test_tampered_certificate_rejected(self, authority4, config4, block_store):
        [block] = build_chain(block_store, 1)
        cert = certificate_for(authority4, config4, block)
        tampered = Certificate(
            kind=cert.kind,
            view=cert.view + 1,
            slot=cert.slot,
            block_hash=cert.block_hash,
            signature=cert.signature,
            formed_in_view=cert.formed_in_view,
        )
        assert not authority4.verify_certificate(tampered)

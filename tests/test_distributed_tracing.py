"""Cluster-wide distributed tracing: shards, wire edges, skew merge, paths.

Covers the tracing plane that spans process boundaries:

* wire codec v5 carries an optional per-sender send sequence — and frames
  without one stay byte-identical to v4 (zero wire cost when tracing is off);
* :class:`AsyncTcpTransport` emits matched send/recv wire events when (and
  only when) a tracer is attached;
* the NTP-style skew estimator recovers deliberately offset child clocks,
  degrades gracefully with zero matched pairs, and carries the classic
  half-the-asymmetry bias on asymmetric links — no worse;
* merging the same shard set is deterministic and survives the JSONL
  round-trip with per-replica tracks and span sources intact;
* the commit critical path decomposes each hop into network / queue /
  compute with WAN links named;
* a real 4-process geo run produces shards that merge into a timeline where
  virginia↔hongkong is the dominant network segment and the speculation
  lead stays positive (the acceptance bar for ``repro trace merge``).
"""

from __future__ import annotations

import asyncio
import json
import os

import pytest

from repro.consensus.messages import FetchRequest
from repro.errors import ConfigurationError
from repro.experiments.runner import ExperimentSpec
from repro.live import codec
from repro.live.config import DeploymentConfig, ReplicaEndpoint
from repro.live.procs import run_multiprocess_experiment
from repro.live.runtime import LiveCluster, LiveNode, WallClock
from repro.live.transport import AsyncTcpTransport
from repro.net.latency import REGION_RTT_MS
from repro.obs.critical import (
    WAN_THRESHOLD_S,
    critical_path_report,
    format_critical_path_report,
    link_delay_matrix,
)
from repro.obs.export import read_jsonl, write_jsonl
from repro.obs.merge import (
    CLIENT_SHARD_ID,
    estimate_offsets,
    merge_shards,
    merge_trace_files,
)
from repro.obs.trace import TraceRecorder, TxnSpan

GEO_ORDER = ["virginia", "london", "hongkong", "saopaulo"]


def _all_message():
    return FetchRequest(block_hash="a" * 64, requester=0)


# ------------------------------------------------------------- codec v5
class TestWireCodecV5:
    @pytest.mark.parametrize("kind", ["json", "binary"])
    def test_traced_frames_round_trip_the_send_sequence(self, kind):
        message = _all_message()
        with codec.wire_codec_scope(kind):
            frame = codec.frame_from_message(
                3, 1, codec.encode_message(message), 1.25, seq=42)
        sender, receiver, sent_at, seq, payload = codec.decode_envelope(frame[4:])
        assert (sender, receiver, sent_at, seq) == (3, 1, 1.25, 42)
        assert payload == message

    @pytest.mark.parametrize("kind", ["json", "binary"])
    def test_untraced_frames_are_byte_identical_to_v4(self, kind):
        """seq=None must not change a single wire byte: mixed clusters where
        only some peers understand v5 interoperate as long as tracing is off,
        and untraced runs pay nothing for the feature."""
        message = _all_message()
        with codec.wire_codec_scope(kind):
            encoded = codec.encode_message(message)
            untraced = codec.frame_from_message(3, 1, encoded, 1.25)
            traced = codec.frame_from_message(3, 1, encoded, 1.25, seq=7)
        if kind == "json":
            assert b'"v":%d' % codec.UNTRACED_WIRE_VERSION in untraced
            assert b'"q"' not in untraced
        else:
            assert untraced[5] == codec.UNTRACED_WIRE_VERSION
        assert len(traced) > len(untraced)
        sender, receiver, sent_at, seq, payload = codec.decode_envelope(untraced[4:])
        assert seq is None
        assert (sender, receiver, sent_at, payload) == (3, 1, 1.25, message)

    def test_decode_envelope_body_stays_a_four_tuple(self):
        frame = codec.frame_from_message(
            0, 2, codec.encode_message(_all_message()), 0.5, seq=9)
        assert codec.decode_envelope_body(frame[4:]) == (0, 2, 0.5, _all_message())


# --------------------------------------------------- transport wire events
class TestTransportWireEvents:
    def _scenario(self, trace_sender: bool, trace_receiver: bool):
        class _Sink:
            def __init__(self, node_id):
                self.node_id = node_id
                self.received = []

            def deliver(self, envelope):
                self.received.append(envelope)

        async def run():
            clock = WallClock()
            left, right = AsyncTcpTransport(0, clock), AsyncTcpTransport(1, clock)
            left.register(_Sink(0))
            sink = _Sink(1)
            right.register(sink)
            left_trace = TraceRecorder(clock) if trace_sender else None
            right_trace = TraceRecorder(clock) if trace_receiver else None
            if left_trace is not None:
                left.set_tracer(left_trace)
            if right_trace is not None:
                right.set_tracer(right_trace)
            cluster = LiveCluster(clock, [LiveNode(0, left), LiveNode(1, right)])
            await cluster.start()
            try:
                for _ in range(5):
                    left.send(0, 1, _all_message())
                for _ in range(400):
                    await asyncio.sleep(0.005)
                    if len(sink.received) >= 5:
                        break
            finally:
                await cluster.close()
            return left_trace, right_trace

        return asyncio.run(run())

    def test_matched_send_recv_events_with_monotonic_sequences(self):
        left_trace, right_trace = self._scenario(True, True)
        sends = [e for e in left_trace.wire if e.kind == "send"]
        recvs = [e for e in right_trace.wire if e.kind == "recv"]
        assert [e.seq for e in sends] == [1, 2, 3, 4, 5]
        assert sorted(e.seq for e in recvs) == [1, 2, 3, 4, 5]
        for recv in recvs:
            assert (recv.src, recv.dst) == (0, 1)
            assert recv.msg == "FetchRequest"
            # Same host, same WallClock epoch basis: receive after send.
            assert recv.t >= recv.sent_at

    def test_untraced_sender_emits_no_sequences_at_all(self):
        """Tracing is per-process: a traced receiver facing an untraced
        sender sees seq-less (v4) frames and records nothing."""
        _, right_trace = self._scenario(False, True)
        assert right_trace.wire_seen == 0
        assert list(right_trace.wire) == []


# --------------------------------------------------------- skew estimation
class _ManualClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now


def _shard(node_id: int) -> TraceRecorder:
    trace = TraceRecorder(_ManualClock(), warmup=0.0, bucket=0.25)
    trace.node_id = node_id
    return trace


def _record_frame(shards, src: int, dst: int, seq: int, true_send: float,
                  delay: float, offsets) -> None:
    """One frame src→dst: the send stamped on src's clock, the receive on
    dst's — with ``offsets[n]`` being node n's clock error (local = true − off)."""
    sender, receiver = shards[src], shards[dst]
    sender.clock.now = true_send - offsets[src]
    sender.wire_send(src, dst, seq)
    receiver.clock.now = (true_send + delay) - offsets[dst]
    receiver.wire_recv(src, dst, seq, sent_at=true_send - offsets[src])


class TestSkewEstimation:
    def test_zero_matched_pairs_degrades_to_concatenation(self):
        shards = {CLIENT_SHARD_ID: _shard(CLIENT_SHARD_ID), 0: _shard(0)}
        offsets = estimate_offsets(shards)
        assert offsets.offsets == {CLIENT_SHARD_ID: 0.0, 0: 0.0}
        assert offsets.unanchored == [0]
        merged, _ = merge_shards(shards)  # must not raise
        assert merged.wire_seen == 0

    def test_deliberately_offset_clocks_are_recovered_exactly(self):
        """Children reset their WallClock origins hundreds of ms apart; with
        symmetric link delays the midpoint estimator recovers the offsets
        exactly, whatever the actual delay value is."""
        skews = {CLIENT_SHARD_ID: 0.0, 0: 0.250, 1: -0.180}
        shards = {n: _shard(n) for n in skews}
        t = 10.0
        for a in skews:
            for b in skews:
                if a == b:
                    continue
                for i in range(3):
                    _record_frame(shards, a, b, i + 1, t, delay=0.040, offsets=skews)
                    t += 0.5
        offsets = estimate_offsets(shards)
        assert offsets.unanchored == []
        for node, skew in skews.items():
            # local = true − skew, so the correction back onto true time
            # is +skew.
            assert offsets.offset(node) == pytest.approx(skew, abs=1e-9)
        # With the offsets applied the corrected link delay is the truth.
        for link, delay in offsets.link_delay_s.items():
            assert delay == pytest.approx(0.040, abs=1e-9)

    def test_asymmetric_link_bias_is_half_the_asymmetry(self):
        """The estimator's classic irreducible error: if the two directions
        of a link differ, half the difference leaks into the offset."""
        skews = {CLIENT_SHARD_ID: 0.0, 0: 0.100}
        shards = {n: _shard(n) for n in skews}
        fast, slow = 0.010, 0.090  # client→r0 fast, r0→client slow
        for i in range(3):
            _record_frame(shards, CLIENT_SHARD_ID, 0, i + 1, 1.0 + i, fast, skews)
            _record_frame(shards, 0, CLIENT_SHARD_ID, i + 1, 1.2 + i, slow, skews)
        offsets = estimate_offsets(shards)
        bias = offsets.offset(0) - skews[0]
        assert abs(bias) == pytest.approx((slow - fast) / 2, abs=1e-9)

    def test_offsets_propagate_transitively_through_relays(self):
        """A node that never talks to the reference still anchors through
        any bidirectional path (client ↔ r0 ↔ r1)."""
        skews = {CLIENT_SHARD_ID: 0.0, 0: 0.300, 1: -0.200}
        shards = {n: _shard(n) for n in skews}
        for i in range(2):
            _record_frame(shards, CLIENT_SHARD_ID, 0, i + 1, 1.0 + i, 0.020, skews)
            _record_frame(shards, 0, CLIENT_SHARD_ID, i + 1, 1.1 + i, 0.020, skews)
            _record_frame(shards, 0, 1, i + 1, 2.0 + i, 0.030, skews)
            _record_frame(shards, 1, 0, i + 1, 2.1 + i, 0.030, skews)
        offsets = estimate_offsets(shards)
        assert offsets.unanchored == []
        assert offsets.offset(1) == pytest.approx(-0.200, abs=1e-9)


# ------------------------------------------------------------------- merge
def _synthetic_cluster_shards():
    """Client + two replicas with skewed clocks, one txn observed by all."""
    skews = {CLIENT_SHARD_ID: 0.0, 0: 0.150, 1: -0.100}
    shards = {n: _shard(n) for n in skews}
    for i in range(3):
        for a in skews:
            for b in skews:
                if a != b:
                    _record_frame(shards, a, b, i + 1, 3.0 + i, 0.025, skews)
    client, r0, r1 = shards[CLIENT_SHARD_ID], shards[0], shards[1]
    client.spans[7] = TxnSpan(txn_id=7, events={
        "submitted": 5.000, "responded": 5.400, "committed": 5.500})
    r0.spans[7] = TxnSpan(txn_id=7, events={
        "mempool": 5.050 - 0.150, "proposed": 5.100 - 0.150,
        "voted": 5.150 - 0.150, "certified": 5.250 - 0.150,
        "spec-executed": 5.300 - 0.150})
    r1.spans[7] = TxnSpan(txn_id=7, events={"mempool": 5.060 + 0.100})
    return shards


class TestMerge:
    def test_merge_is_deterministic_and_round_trips_jsonl(self, tmp_path):
        records = []
        for _ in range(2):
            merged, _ = merge_shards(_synthetic_cluster_shards())
            records.append([json.dumps(r, sort_keys=True)
                            for r in merged.to_records()])
        assert records[0] == records[1]

        merged, _ = merge_shards(_synthetic_cluster_shards())
        path = write_jsonl(merged, str(tmp_path / "merged.jsonl"))
        loaded = read_jsonl(path)
        assert getattr(loaded, "per_replica_tracks", False) is True
        assert [json.dumps(r, sort_keys=True) for r in loaded.to_records()] \
            == records[0]

    def test_spans_fold_across_shards_with_sources_and_skew_correction(self):
        merged, offsets = merge_shards(_synthetic_cluster_shards())
        assert offsets.offset(0) == pytest.approx(0.150, abs=1e-9)
        span = merged.spans[7]
        # r0's replica-side events land between the client's bracketing
        # events once rebased onto the reference timeline.
        assert span.events["mempool"] == pytest.approx(5.050, abs=1e-9)
        assert span.events["certified"] == pytest.approx(5.250, abs=1e-9)
        assert span.sources["submitted"] == CLIENT_SHARD_ID
        assert span.sources["certified"] == 0
        # First observation wins: r1 saw the txn in its mempool later.
        assert span.sources["mempool"] == 0

    def test_duplicate_shard_node_ids_are_rejected(self, tmp_path):
        trace = _shard(2)
        a, b = str(tmp_path / "trace-r2.jsonl"), str(tmp_path / "x.jsonl")
        write_jsonl(trace, a)
        write_jsonl(trace, b)
        with pytest.raises(ConfigurationError, match="node 2"):
            merge_trace_files([a, b])


# ---------------------------------------------------------- critical path
class TestCriticalPath:
    def _merged(self, link_floor: float):
        merged, _ = merge_shards(_synthetic_cluster_shards())
        if link_floor != 0.025:
            # Rewrite the wire delays: recv at sent_at + floor.
            for event in merged.wire:
                if event.kind == "recv":
                    event.t = event.sent_at + link_floor
        return merged

    def test_link_delay_matrix_reads_corrected_minima(self):
        merged = self._merged(0.025)
        matrix = link_delay_matrix(merged)
        assert matrix[(CLIENT_SHARD_ID, 0)] == pytest.approx(0.025, abs=1e-9)
        assert matrix[(0, 1)] == pytest.approx(0.025, abs=1e-9)

    def test_hops_decompose_into_network_queue_compute(self):
        merged = self._merged(0.025)
        report = critical_path_report(merged)
        assert report.spans_used == 1
        hops = {hop.name: hop for hop in report.hops}
        admission = hops["submitted→mempool"]  # client → r0, 50 ms total
        assert admission.kind == "network"
        assert admission.link == (CLIENT_SHARD_ID, 0)
        assert admission.network_s == pytest.approx(0.025, abs=1e-9)
        assert admission.queue_s == pytest.approx(0.025, abs=1e-9)
        assert hops["mempool→proposed"].queue_s == pytest.approx(0.050, abs=1e-9)
        assert hops["certified→spec-executed"].compute_s == pytest.approx(0.050, abs=1e-9)
        assert report.speculation_lead_p50_s == pytest.approx(0.100, abs=1e-9)

    def test_wan_links_are_named_and_dominate_the_report(self):
        merged = self._merged(0.120)
        report = critical_path_report(
            merged, regions={CLIENT_SHARD_ID: "virginia", 0: "hongkong"})
        assert report.wan_links  # 120 ms > 10 ms threshold
        assert report.wan_network_share == pytest.approx(1.0)
        text = format_critical_path_report(report)
        assert "WAN" in text
        assert "hongkong" in text

    def test_local_links_report_no_wan(self):
        report = critical_path_report(self._merged(0.0001))
        assert report.wan_links == []
        assert report.wan_threshold_s == WAN_THRESHOLD_S
        assert "no WAN links" in format_critical_path_report(report)


# ----------------------------------------------- real multi-process runs
class TestMultiprocessTracing:
    def test_geo_run_merges_into_wan_critical_path(self, tmp_path):
        """The acceptance bar: a real 4-process geo deployment yields shards
        that merge into a skew-corrected timeline whose critical path shows
        virginia↔hongkong as the dominant network cost, with hotstuff-1's
        speculation lead still positive after the merge."""
        spec = ExperimentSpec(
            protocol="hotstuff-1", mode="live", n=4, batch_size=8,
            duration=8.0, warmup=1.0, seed=3, view_timeout=1.5,
            regions=list(GEO_ORDER), distributed_mempool=True, trace=True,
            storage_dir=str(tmp_path / "wal"),
        )
        result = run_multiprocess_experiment(spec, rate=40.0, max_outstanding=200)
        info = result.multiproc
        assert info["prefix_consistent"] is True
        assert info["replica_deaths"] == {}

        # Tentpole part 1: one shard per process, collected by the
        # coordinator; plus the storage_dir satellite — each child got a
        # private WAL subdir.
        shards = info["trace_shards"]
        assert set(shards) == {"client", "r0", "r1", "r2", "r3"}
        for path in shards.values():
            assert os.path.isfile(path)
        for rid in range(4):
            assert os.path.isdir(tmp_path / "wal" / f"r{rid}")

        merged, offsets = merge_trace_files(sorted(shards.values()))
        assert offsets.unanchored == []
        # Child processes started after the coordinator: every replica clock
        # lags the reference and needs a positive correction.
        assert all(offsets.offset(r) > 0 for r in range(4))

        # The shaped virginia↔hongkong link is measured, not assumed:
        # its skew-corrected one-way floor must be ≥ the table's 106 ms.
        va_hk = REGION_RTT_MS[frozenset(["virginia", "hongkong"])] / 2 / 1000.0
        report = critical_path_report(merged)
        assert report.link_delay_s[(0, 2)] >= va_hk * 0.95
        assert (0, 2) in report.wan_links and (2, 0) in report.wan_links
        assert report.wan_network_share > 0.5
        dominant = report.dominant_link
        assert dominant is not None
        assert report.link_delay_s[dominant] >= WAN_THRESHOLD_S
        assert "WAN" in format_critical_path_report(report)

        # Replica-side lifecycle events joined the client's spans.
        multi_source = [s for s in merged.spans.values()
                        if {v for v in s.sources.values()} - {CLIENT_SHARD_ID}]
        assert len(multi_source) > 20

        # The paper's one-phase headline survives the merge.
        breakdown = merged.phase_breakdown()
        assert breakdown.spans_used > 50
        assert breakdown.speculation_lead_s > 0
        assert breakdown.response_s >= 0.212


# ------------------------------------------------- watch --deployment
class TestWatchDeploymentEndpoints:
    def _config(self, notes=None):
        return DeploymentConfig(
            replicas=[ReplicaEndpoint(i, f"10.0.0.{i + 1}", 7000 + i)
                      for i in range(3)],
            client_host="127.0.0.1",
            client_port=7100,
            notes=dict(notes or {}),
        )

    def test_endpoints_derive_from_the_scrape_port_note(self):
        from repro.cli import scrape_endpoints_from_deployment

        endpoints = scrape_endpoints_from_deployment(self._config({"scrape_port": 9470}))
        assert endpoints == ["10.0.0.1:9470", "10.0.0.2:9471", "10.0.0.3:9472"]

    def test_base_port_override_beats_the_note(self):
        from repro.cli import scrape_endpoints_from_deployment

        endpoints = scrape_endpoints_from_deployment(
            self._config({"scrape_port": 9470}), base_port=8000)
        assert endpoints == ["10.0.0.1:8000", "10.0.0.2:8001", "10.0.0.3:8002"]

    def test_missing_note_asks_for_an_explicit_port(self):
        from repro.cli import scrape_endpoints_from_deployment

        with pytest.raises(ConfigurationError, match="scrape_port"):
            scrape_endpoints_from_deployment(self._config())

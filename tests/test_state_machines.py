"""Unit tests for the KV and TPC-C state machines (execution and undo)."""

from __future__ import annotations

import pytest

from repro.errors import ExecutionError
from repro.ledger.kvstore import KVStateMachine
from repro.ledger.tpcc_state import TPCCStateMachine
from repro.ledger.transaction import Transaction


def write(key, value, txn_id=None):
    return Transaction.create(1, "ycsb_write", {"key": key, "value": value}, txn_id=txn_id)


class TestKVStateMachine:
    def test_write_then_read(self):
        machine = KVStateMachine()
        machine.apply(write("user1", "hello"))
        result = machine.apply(Transaction.create(1, "ycsb_read", {"key": "user1"}))
        assert result.success
        assert result.output["value"] == "hello"

    def test_rmw_updates_value(self):
        machine = KVStateMachine()
        machine.apply(write("user2", "base"))
        result = machine.apply(Transaction.create(1, "ycsb_rmw", {"key": "user2", "value": "new"}))
        assert result.success
        assert machine.read("user2").startswith("new")

    def test_unknown_operation_raises(self):
        machine = KVStateMachine()
        with pytest.raises(ExecutionError):
            machine.apply(Transaction.create(1, "bogus_op"))

    def test_undo_restores_previous_value(self):
        machine = KVStateMachine()
        machine.apply(write("user3", "first"))
        _, record = machine.apply_with_undo(write("user3", "second"))
        assert machine.read("user3") == "second"
        machine.undo(record)
        assert machine.read("user3") == "first"

    def test_undo_removes_newly_created_key(self):
        machine = KVStateMachine()
        _, record = machine.apply_with_undo(write("brand-new", "x"))
        machine.undo(record)
        assert machine.read("brand-new") is None

    def test_state_digest_reflects_writes(self):
        a = KVStateMachine()
        b = KVStateMachine()
        assert a.state_digest() == b.state_digest()
        a.apply(write("user4", "x"))
        assert a.state_digest() != b.state_digest()
        b.apply(write("user4", "x"))
        assert a.state_digest() == b.state_digest()

    def test_result_digest_matches_across_replicas(self):
        a = KVStateMachine()
        b = KVStateMachine()
        txn = write("user5", "same", txn_id=42)
        assert a.apply(txn).result_digest == b.apply(txn).result_digest

    def test_eager_preload_materialises_records(self):
        machine = KVStateMachine(preload_records=10, eager_preload=True)
        assert machine.record_count == 10
        assert machine.read(KVStateMachine.key_name(3)) == KVStateMachine.default_value(3)

    def test_apply_batch_returns_per_txn_results(self):
        machine = KVStateMachine()
        results = machine.apply_batch([write("a", "1"), write("b", "2")])
        assert len(results) == 2
        assert all(result.success for result in results)


class TestTPCCStateMachine:
    def make_machine(self):
        return TPCCStateMachine(warehouses=1, items=50)

    def new_order_txn(self, lines=2):
        return Transaction.create(
            1,
            "tpcc_new_order",
            {
                "w_id": 1,
                "d_id": 1,
                "c_id": 1,
                "lines": [{"i_id": i + 1, "quantity": 2, "supply_w_id": 1} for i in range(lines)],
            },
        )

    def test_initial_load_sizes(self):
        machine = self.make_machine()
        assert machine.record_count > 300
        assert len(machine.table("warehouse")) == 1
        assert len(machine.table("district")) == 10

    def test_new_order_creates_order_and_decrements_stock(self):
        machine = self.make_machine()
        before = machine.table("stock")[(1, 1)]["quantity"]
        result = machine.apply(self.new_order_txn())
        assert result.success
        assert machine.table("stock")[(1, 1)]["quantity"] < before
        assert len(machine.table("orders")) == 1

    def test_new_order_with_invalid_item_aborts(self):
        machine = self.make_machine()
        txn = Transaction.create(
            1, "tpcc_new_order",
            {"w_id": 1, "d_id": 1, "c_id": 1, "lines": [{"i_id": 9999, "quantity": 1}]},
        )
        result = machine.apply(txn)
        assert not result.success

    def test_payment_updates_balances(self):
        machine = self.make_machine()
        result = machine.apply(
            Transaction.create(1, "tpcc_payment", {"w_id": 1, "d_id": 2, "c_id": 3, "amount": 50.0})
        )
        assert result.success
        assert machine.table("customer")[(1, 2, 3)]["balance"] == pytest.approx(-60.0)
        assert machine.table("warehouse")[1]["ytd"] == pytest.approx(50.0)

    def test_order_status_reports_latest_order(self):
        machine = self.make_machine()
        machine.apply(self.new_order_txn())
        result = machine.apply(
            Transaction.create(1, "tpcc_order_status", {"w_id": 1, "d_id": 1, "c_id": 1})
        )
        assert result.success
        assert result.output["last_order"] == 1

    def test_delivery_marks_orders_delivered(self):
        machine = self.make_machine()
        machine.apply(self.new_order_txn())
        result = machine.apply(Transaction.create(1, "tpcc_delivery", {"w_id": 1}))
        assert result.success
        assert result.output["delivered"] == 1

    def test_stock_level_counts_low_stock(self):
        machine = self.make_machine()
        result = machine.apply(
            Transaction.create(1, "tpcc_stock_level", {"w_id": 1, "threshold": 200})
        )
        assert result.success
        assert result.output["low_stock"] == 50

    def test_undo_restores_new_order_effects(self):
        machine = self.make_machine()
        digest_before = machine.state_digest()
        _, record = machine.apply_with_undo(self.new_order_txn())
        assert machine.state_digest() != digest_before
        machine.undo(record)
        assert machine.state_digest() == digest_before

    def test_unknown_operation_raises(self):
        machine = self.make_machine()
        with pytest.raises(ExecutionError):
            machine.apply(Transaction.create(1, "tpcc_unknown", {}))

    def test_execution_cost_is_higher_than_kv(self):
        assert TPCCStateMachine.execution_cost > KVStateMachine.execution_cost

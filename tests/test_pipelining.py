"""Leader pipelining (``pipeline_depth > 1``): SafeSlot's pipelined arm,
spec validation, and committed-prefix equivalence in sim and live mode."""

from __future__ import annotations

import pytest

from repro.consensus.certificates import CertKind
from repro.consensus.messages import Propose
from repro.core.slotting import SlottedHotStuff1Replica
from repro.errors import ConfigurationError
from repro.experiments.runner import ExperimentSpec, run_experiment
from repro.ledger.block import Block
from repro.types import NULL_DIGEST

from tests.conftest import make_txn
from tests.helpers import ReplicaHarness


class TestSpecValidation:
    def test_depth_above_one_needs_a_slotting_protocol(self):
        with pytest.raises(ConfigurationError, match="slotted"):
            ExperimentSpec(protocol="hotstuff-1", pipeline_depth=2).validate()

    def test_depth_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="pipeline_depth"):
            ExperimentSpec(protocol="hotstuff-1-slotting", pipeline_depth=0).validate()

    def test_depth_cannot_exceed_max_slots_per_view(self):
        with pytest.raises(ConfigurationError, match="max_slots_per_view"):
            ExperimentSpec(
                protocol="hotstuff-1-slotting", pipeline_depth=9, max_slots_per_view=8
            ).validate()

    def test_slotting_protocol_accepts_deep_pipelines(self):
        spec = ExperimentSpec(protocol="hotstuff-1-slotting", pipeline_depth=4).validate()
        assert spec.pipeline_depth == 4


@pytest.fixture
def harness():
    """A standalone slotted replica (id 3, so replica 2 leads view 2) with a
    depth-4 pipeline."""
    built = ReplicaHarness(SlottedHotStuff1Replica, replica_id=3, n=4)
    built.config.pipeline_depth = 4
    return built


def _chain_block(harness, view, slot, parent, proposer=2, seed=0):
    block = Block.build(
        view=view,
        slot=slot,
        parent_hash=parent.block_hash,
        proposer=proposer,
        transactions=[make_txn(seed + view * 100 + slot)],
        carry_hash=NULL_DIGEST,
    )
    harness.replica.block_store.add(block)
    return block


class TestSafePipelinedSlot:
    """The pipelined arm accepts slot ``s`` whose uncertified ancestry is a
    consecutive-slot same-view same-proposer chain of vouched-for blocks,
    rooted at the justify's block or at the view's first slot."""

    def _chain(self, harness, length, vote=True):
        genesis = harness.replica.block_store.genesis
        blocks = []
        parent = genesis
        for slot in range(1, length + 1):
            parent = _chain_block(harness, 2, slot, parent)
            if vote:
                harness.replica._voted_hashes.add(parent.block_hash)
            blocks.append(parent)
        return blocks

    def test_accepts_gap_rooted_at_justified_block(self, harness):
        s1, s2, s3 = self._chain(harness, 3)
        justify = harness.certificate(CertKind.NEW_SLOT, s1)
        proposal = Propose(view=2, slot=3, block=s3, justify=justify)
        assert harness.replica._safe_pipelined_slot(proposal)

    def test_accepts_gap_rooted_at_first_slot(self, harness):
        s1, s2, s3 = self._chain(harness, 3)
        genesis_cert = harness.replica.high_cert
        proposal = Propose(view=2, slot=3, block=s3, justify=genesis_cert)
        assert harness.replica._safe_pipelined_slot(proposal)

    def test_rejects_unvouched_link(self, harness):
        s1, s2, s3 = self._chain(harness, 3, vote=False)
        justify = harness.certificate(CertKind.NEW_SLOT, s1)
        proposal = Propose(view=2, slot=3, block=s3, justify=justify)
        assert not harness.replica._safe_pipelined_slot(proposal)

    def test_certificate_vouches_for_an_unvoted_link(self, harness):
        s1, s2, s3 = self._chain(harness, 3, vote=False)
        justify = harness.certificate(CertKind.NEW_SLOT, s1)
        # The replica never voted for s2 (it may have been offline), but it
        # verified a certificate for it — a quorum's endorsement is strictly
        # stronger than its own vote.
        harness.replica.record_certificate(harness.certificate(CertKind.NEW_SLOT, s2))
        proposal = Propose(view=2, slot=3, block=s3, justify=justify)
        assert harness.replica._safe_pipelined_slot(proposal)

    def test_rejects_foreign_proposer_in_the_chain(self, harness):
        s1, s2 = self._chain(harness, 2)
        rogue = _chain_block(harness, 2, 3, s2, proposer=1)
        harness.replica._voted_hashes.add(rogue.block_hash)
        s4 = _chain_block(harness, 2, 4, rogue)
        justify = harness.certificate(CertKind.NEW_SLOT, s1)
        proposal = Propose(view=2, slot=4, block=s4, justify=justify)
        assert not harness.replica._safe_pipelined_slot(proposal)

    def test_rejects_gap_deeper_than_pipeline_depth(self, harness):
        harness.config.pipeline_depth = 2
        blocks = self._chain(harness, 4)
        justify = harness.certificate(CertKind.NEW_SLOT, blocks[0])
        proposal = Propose(view=2, slot=4, block=blocks[3], justify=justify)
        assert not harness.replica._safe_pipelined_slot(proposal)

    def test_rejects_nonconsecutive_slots(self, harness):
        s1, s2 = self._chain(harness, 2)
        skipped = _chain_block(harness, 2, 4, s2)  # slot 3 never proposed
        justify = harness.certificate(CertKind.NEW_SLOT, s1)
        proposal = Propose(view=2, slot=4, block=skipped, justify=justify)
        assert not harness.replica._safe_pipelined_slot(proposal)

    def test_rejects_justify_from_another_view(self, harness):
        genesis = harness.replica.block_store.genesis
        old = _chain_block(harness, 1, 1, genesis, proposer=1)
        justify = harness.certificate(CertKind.NEW_SLOT, old)
        s1, s2 = self._chain(harness, 2)
        proposal = Propose(view=2, slot=2, block=s2, justify=justify)
        # The walk reaches slot 1 before matching the stale justify, so the
        # chain is rooted correctly and remains safe; but rooting *at* the
        # stale justify must fail the view check.
        direct = Propose(view=2, slot=1, block=s1, justify=justify)
        assert not harness.replica._safe_pipelined_slot(direct)
        assert harness.replica._safe_pipelined_slot(proposal)


def _committed_chains(replicas):
    return [
        [block.block_hash for block in replica.ledger.committed.blocks()]
        for replica in replicas
    ]


def _assert_prefix_consistent(chains):
    reference = max(chains, key=len)
    for chain in chains:
        assert chain == reference[: len(chain)]
    return reference


class TestPipelinedSimulation:
    BASE = dict(
        protocol="hotstuff-1-slotting", n=4, batch_size=100, workload="ycsb",
        duration=0.08, warmup=0.02, seed=5, view_timeout=0.03, num_clients=800,
    )

    def test_deep_pipeline_commits_more_and_stays_safe(self):
        """Same spec, depths 1 and 4: the deep pipeline overlaps proposal
        dissemination with vote aggregation and commits strictly more, while
        every replica's committed chain stays a prefix of the longest (the
        ledger safety checker also runs inside run_experiment)."""
        shallow = run_experiment(ExperimentSpec(pipeline_depth=1, **self.BASE))
        deep = run_experiment(ExperimentSpec(pipeline_depth=4, **self.BASE))
        for result in (shallow, deep):
            assert result.summary.committed_txns > 0
            _assert_prefix_consistent(_committed_chains(result.replicas))
        # The discrete-event simulator is deterministic, so this is a stable
        # inequality, not a flaky performance assertion.
        assert deep.summary.committed_txns > shallow.summary.committed_txns

    def test_depth_one_reproduces_sequential_slotting(self):
        """pipeline_depth=1 must reproduce the paper's sequential slotting:
        the knob's default changes nothing about the schedule.  (Block hashes
        embed process-global transaction ids, so the comparison is structural
        — counts and chain shapes — not hash-identical.)"""
        default = run_experiment(ExperimentSpec(**self.BASE))
        explicit = run_experiment(ExperimentSpec(pipeline_depth=1, **self.BASE))
        assert default.summary.committed_txns == explicit.summary.committed_txns
        assert default.summary.view_changes == explicit.summary.view_changes
        default_shape = [
            [(block.view, block.slot) for block in replica.ledger.committed.blocks()]
            for replica in default.replicas
        ]
        explicit_shape = [
            [(block.view, block.slot) for block in replica.ledger.committed.blocks()]
            for replica in explicit.replicas
        ]
        assert default_shape == explicit_shape


class TestPipelinedLive:
    def test_live_pipelined_run_commits_with_agreeing_prefixes(self):
        """A depth-4 binary-codec live cluster commits the target and every
        replica's committed chain is a prefix of the longest — the live half
        of the committed-prefix equivalence the sim test establishes."""
        from repro.live.deploy import run_live_experiment

        spec = ExperimentSpec(
            protocol="hotstuff-1-slotting", mode="live", n=4, batch_size=20,
            duration=8.0, warmup=0.05, seed=11, view_timeout=0.05,
            codec="binary", pipeline_depth=4,
        )
        result = run_live_experiment(spec, target_ops=150)
        assert result.summary.committed_txns >= 150
        reference = _assert_prefix_consistent(_committed_chains(result.replicas))
        assert len(reference) > 0
        assert result.summary.rollbacks == 0

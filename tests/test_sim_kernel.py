"""Unit tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.clock import SimClock
from repro.sim.events import Event
from repro.sim.process import PeriodicTimer, Timer
from repro.sim.rng import SeededRng
from repro.sim.scheduler import Simulator


class TestSimClock:
    def test_starts_at_zero_by_default(self):
        assert SimClock().now == 0.0

    def test_advance_moves_forward(self):
        clock = SimClock()
        clock.advance_to(1.5)
        assert clock.now == 1.5

    def test_advance_to_same_time_is_noop(self):
        clock = SimClock(2.0)
        clock.advance_to(2.0)
        assert clock.now == 2.0

    def test_cannot_move_backwards(self):
        clock = SimClock(5.0)
        with pytest.raises(SimulationError):
            clock.advance_to(1.0)

    def test_negative_start_rejected(self):
        with pytest.raises(SimulationError):
            SimClock(-1.0)


class TestEventOrdering:
    def test_events_ordered_by_time(self):
        early = Event(1.0, 5, lambda: None)
        late = Event(2.0, 1, lambda: None)
        assert early < late

    def test_ties_broken_by_sequence(self):
        first = Event(1.0, 1, lambda: None)
        second = Event(1.0, 2, lambda: None)
        assert first < second

    def test_cancel_marks_not_pending(self):
        event = Event(1.0, 0, lambda: None)
        assert event.pending
        event.cancel()
        assert not event.pending


class TestSimulator:
    def test_runs_events_in_time_order(self, sim):
        fired = []
        sim.schedule(2.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.run()
        assert fired == ["early", "late"]

    def test_same_time_events_fire_in_scheduling_order(self, sim):
        fired = []
        for name in ("a", "b", "c"):
            sim.schedule(1.0, fired.append, name)
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_last_event(self, sim):
        sim.schedule(3.5, lambda: None)
        sim.run()
        assert sim.now == pytest.approx(3.5)

    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "in-window")
        sim.schedule(5.0, fired.append, "out-of-window")
        sim.run(until=2.0)
        assert fired == ["in-window"]
        assert sim.now == pytest.approx(2.0)

    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        sim.cancel(event)
        sim.run()
        assert fired == []

    def test_cannot_schedule_in_the_past(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.5, lambda: None)

    def test_events_scheduled_during_run_also_fire(self, sim):
        fired = []

        def chain():
            fired.append("first")
            sim.schedule(1.0, fired.append, "second")

        sim.schedule(1.0, chain)
        sim.run()
        assert fired == ["first", "second"]
        assert sim.now == pytest.approx(2.0)

    def test_max_events_bound(self, sim):
        fired = []
        for index in range(10):
            sim.schedule(float(index + 1), fired.append, index)
        sim.run(max_events=3)
        assert len(fired) == 3

    def test_events_processed_counter(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.events_processed == 2

    def test_determinism_across_instances(self):
        def run_once():
            simulator = Simulator(seed=3)
            order = []
            for index in range(20):
                delay = simulator.rng.uniform(0, 1)
                simulator.schedule(delay, order.append, index)
            simulator.run()
            return order

        assert run_once() == run_once()


class TestTimer:
    def test_fires_after_delay(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(0.5)
        sim.run()
        assert fired == [pytest.approx(0.5)]

    def test_restart_cancels_previous(self, sim):
        fired = []
        timer = Timer(sim, lambda tag: fired.append(tag))
        timer.start(0.5, "first")
        timer.start(1.0, "second")
        sim.run()
        assert fired == ["second"]

    def test_cancel_prevents_firing(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(1))
        timer.start(0.5)
        timer.cancel()
        sim.run()
        assert fired == []

    def test_deadline_reports_absolute_time(self, sim):
        timer = Timer(sim, lambda: None)
        timer.start(0.25)
        assert timer.deadline == pytest.approx(0.25)
        assert timer.pending


class TestPeriodicTimer:
    def test_ticks_repeatedly_until_stopped(self, sim):
        ticks = []
        timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
        timer.start()
        sim.run(until=3.5)
        assert ticks == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0)]

    def test_stop_prevents_future_ticks(self, sim):
        ticks = []
        timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
        timer.start()
        sim.schedule(1.5, timer.stop)
        sim.run(until=5.0)
        assert len(ticks) == 1

    def test_rejects_non_positive_period(self, sim):
        with pytest.raises(ValueError):
            PeriodicTimer(sim, 0.0, lambda: None)


class TestSeededRng:
    def test_same_seed_same_stream(self):
        a = SeededRng(5)
        b = SeededRng(5)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_fork_streams_are_independent(self):
        root = SeededRng(5)
        fork_a = root.fork("a")
        fork_b = root.fork("b")
        assert [fork_a.random() for _ in range(5)] != [fork_b.random() for _ in range(5)]

    def test_randint_within_bounds(self):
        rng = SeededRng(1)
        values = [rng.randint(3, 7) for _ in range(100)]
        assert all(3 <= value <= 7 for value in values)

    def test_choice_picks_existing_element(self):
        rng = SeededRng(1)
        items = ["x", "y", "z"]
        assert all(rng.choice(items) in items for _ in range(20))

"""Live telemetry plane: streaming sinks, samplers, detectors, scrape, watch.

Covers the PR's tentpole guarantees: a streaming trace sink keeps recorder
memory bounded while the JSONL file stays lossless and readable mid-run;
tail-biased sampling retains the slowest spans; the online SLO detector
fires during injected faults (bracketing a chaos blackout) without flapping
on noise; the per-replica scrape endpoints answer concurrent probes during a
real live run; and the `repro watch` / extended `repro trace` CLI surfaces
work end to end.
"""

from __future__ import annotations

import asyncio
import json
import threading
import urllib.request

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.experiments.report import format_chaos_report
from repro.experiments.runner import ExperimentSpec, run_experiment
from repro.faults.plan import chaos_preset
from repro.obs.detect import (
    Alert,
    CommitStallRule,
    SloDetector,
    SpecLeadCollapseRule,
    ViewStormRule,
)
from repro.obs.export import parse_prometheus, read_jsonl
from repro.obs.sampling import (
    ReservoirSampler,
    TailBiasedSampler,
    make_sampler,
)
from repro.obs.scrape import ReplicaTelemetry, ScrapeServer
from repro.obs.stream import StreamingTraceSink, TraceTail
from repro.obs.trace import TraceRecorder
from repro.obs.watch import active_alerts, render_dashboard, watch_file


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0


class FakeTxn:
    def __init__(self, txn_id):
        self.txn_id = txn_id


class FakeBlock:
    def __init__(self, block_hash, txn_ids, view=1, slot=1):
        self.block_hash = block_hash
        self.view = view
        self.slot = slot
        self.transactions = [FakeTxn(txn_id) for txn_id in txn_ids]
        self.txn_count = len(txn_ids)


def recorder_with(**kwargs) -> TraceRecorder:
    return TraceRecorder(clock=FakeClock(), **kwargs)


def complete_txn(recorder: TraceRecorder, txn_id: int, submitted_at: float,
                 latency: float) -> None:
    """Submit + respond + commit one transaction with a chosen latency."""
    clock = recorder.clock
    clock.now = submitted_at
    recorder.txn_submitted(txn_id)
    clock.now = submitted_at + latency
    recorder.txn_responded(txn_id, submitted_at=submitted_at, speculative=True)
    recorder.block_committed(FakeBlock(f"b{txn_id}", [txn_id]), replica=0)


class TestStreamingSink:
    def test_file_is_readable_mid_run(self, tmp_path):
        recorder = recorder_with(bucket=0.1)
        sink = StreamingTraceSink(recorder, str(tmp_path / "stream.jsonl"))
        for txn_id in range(20):
            complete_txn(recorder, txn_id, submitted_at=txn_id * 0.05, latency=0.01)
        sink.flush()
        # The run is still open (no close()) — a reader sees the data so far.
        mid = read_jsonl(sink.path)
        assert mid.counts["submitted"] == 20
        assert mid.counts["committed"] == 20
        recorder.finalize(2.0)
        assert sink.closed
        final = read_jsonl(sink.path)
        assert len(final.spans) == 20
        assert final.counts == recorder.counts

    def test_recorder_memory_stays_bounded(self, tmp_path):
        recorder = recorder_with(bucket=0.05, max_txns=64)
        sink = StreamingTraceSink(recorder, str(tmp_path / "stream.jsonl"))
        peak_spans = peak_buckets = 0
        for txn_id in range(2000):
            complete_txn(recorder, txn_id, submitted_at=txn_id * 0.01, latency=0.002)
            if txn_id % 50 == 0:
                sink.flush()
                peak_spans = max(peak_spans, len(recorder.spans))
                peak_buckets = max(peak_buckets, len(recorder.buckets))
        # Completed spans retire after the grace window (2 bucket widths @
        # 100 txns/s of clock time), closed buckets are evicted on closure.
        assert peak_spans <= recorder.max_txns
        assert peak_buckets <= 5
        recorder.finalize(2000 * 0.01 + 1.0)
        restored = read_jsonl(sink.path)
        # The file is lossless: every span and every bucket made it to disk.
        assert len(restored.spans) == 2000
        assert restored.counts["committed"] == 2000
        assert len(restored.buckets) >= 390

    def test_incomplete_spans_are_abandoned_not_pinned(self, tmp_path):
        recorder = recorder_with(bucket=0.05, max_txns=10)
        sink = StreamingTraceSink(recorder, str(tmp_path / "stream.jsonl"))
        # 10 transactions that never complete fill the working set ...
        for txn_id in range(10):
            recorder.clock.now = txn_id * 0.001
            recorder.txn_submitted(txn_id)
        assert len(recorder.spans) == 10
        # ... far past the abandon horizon they are flushed out, and
        # admission flows again.
        recorder.clock.now = 100.0
        sink.flush()
        assert len(recorder.spans) == 0
        recorder.txn_submitted(99)
        assert 99 in recorder.spans

    def test_reader_tolerates_crash_truncated_tail(self, tmp_path):
        recorder = recorder_with(bucket=0.1)
        sink = StreamingTraceSink(recorder, str(tmp_path / "stream.jsonl"))
        for txn_id in range(5):
            complete_txn(recorder, txn_id, submitted_at=txn_id * 0.01, latency=0.001)
        sink.flush()
        with open(sink.path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "span", "txn')  # crash mid-write
        restored = read_jsonl(sink.path)
        assert restored.counts["submitted"] == 5

    def test_trace_tail_is_incremental_and_resets_on_truncation(self, tmp_path):
        path = tmp_path / "tail.jsonl"
        path.write_text('{"a": 1}\n{"b": 2}\n{"torn', encoding="utf-8")
        tail = TraceTail(str(path))
        assert tail.poll() == [{"a": 1}, {"b": 2}]
        assert tail.poll() == []  # torn tail stays pending
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('"}\n{"c": 3}\n')
        records = tail.poll()
        assert {"c": 3} in records
        path.write_text('{"fresh": 1}\n', encoding="utf-8")  # rotation
        assert tail.poll() == [{"fresh": 1}]


class TestSampling:
    def test_tail_biased_keeps_the_slowest_spans(self):
        recorder = recorder_with(bucket=10.0)
        recorder.sampler = TailBiasedSampler(capacity=5)
        # 50 fast transactions and 5 slow outliers, interleaved.
        latencies = {}
        for txn_id in range(55):
            latency = 0.5 if txn_id % 11 == 10 else 0.01 + txn_id * 1e-5
            latencies[txn_id] = latency
            complete_txn(recorder, txn_id, submitted_at=txn_id * 1.0, latency=latency)
        kept = set(recorder.spans)
        slowest = {txn_id for txn_id, lat in latencies.items() if lat == 0.5}
        assert slowest <= kept

    def test_reservoir_is_capacity_bounded_and_counts_offers(self):
        recorder = recorder_with(bucket=10.0)
        sampler = recorder.sampler = ReservoirSampler(capacity=8, rng=recorder._rng)
        for txn_id in range(200):
            recorder.clock.now = txn_id * 0.01
            recorder.txn_submitted(txn_id)
        assert sampler.seen == 200
        assert len(recorder.spans) == 8
        assert recorder.counts["submitted"] == 200  # counters stay exact

    def test_sampler_evictions_stream_to_disk(self, tmp_path):
        recorder = recorder_with(bucket=10.0, max_txns=5)
        StreamingTraceSink(recorder, str(tmp_path / "stream.jsonl"))
        recorder.sampler = TailBiasedSampler(capacity=5)
        for txn_id in range(40):
            complete_txn(recorder, txn_id, submitted_at=txn_id * 1.0, latency=0.01)
        recorder.finalize(50.0)
        # In-memory working set is the sampler's choice; the file has it all.
        assert len(read_jsonl(str(tmp_path / "stream.jsonl")).spans) == 40

    def test_make_sampler_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            make_sampler("bogus", 10)


class TestSloDetector:
    def drive(self, recorder, start, count, committed_per_bucket):
        """Advance whole buckets, committing a block per bucket (or none)."""
        width = recorder.bucket_width
        for index in range(start, start + count):
            recorder.clock.now = (index + 0.5) * width
            if committed_per_bucket:
                block = FakeBlock(f"b{index}", list(range(committed_per_bucket)))
                block.block_hash = f"b{index}"
                recorder.block_committed(block, replica=0)
            recorder.advance(recorder.clock.now)

    def test_sustained_stall_raises_once_then_clears(self):
        recorder = recorder_with(bucket=0.1)
        detector = SloDetector(recorder, rules=[CommitStallRule()],
                               fire_after=3, clear_after=3)
        self.drive(recorder, 0, 8, committed_per_bucket=10)   # healthy baseline
        self.drive(recorder, 8, 6, committed_per_bucket=0)    # stall
        self.drive(recorder, 14, 8, committed_per_bucket=10)  # recovery
        recorder.finalize(2.4)
        alerts = detector.alerts()
        assert [a.rule for a in alerts] == ["commit-stall"]
        alert = alerts[0]
        assert alert.cleared_at is not None and alert.cleared_at > alert.raised_at
        # Raised inside the stall window (buckets 8..13), not after it.
        assert 0.8 <= alert.raised_at <= 1.4
        kinds = [inst.kind for inst in recorder.instants]
        assert kinds.count("alert") == 1 and kinds.count("alert-cleared") == 1

    def test_hysteresis_ignores_alternating_noise(self):
        recorder = recorder_with(bucket=0.1)
        detector = SloDetector(recorder, rules=[CommitStallRule()],
                               fire_after=3, clear_after=3)
        self.drive(recorder, 0, 6, committed_per_bucket=10)
        # Alternating good/bad buckets never build a 3-bucket bad streak.
        # (End on a good bucket: trailing silence after the last data point
        # would itself be a genuine stall.)
        for index in range(6, 27):
            self.drive(recorder, index, 1, committed_per_bucket=0 if index % 2 else 10)
        recorder.finalize(2.65)
        assert detector.alerts() == []

    def test_view_storm_needs_churn_without_commits(self):
        rule = ViewStormRule()
        from repro.obs.detect import BucketStats

        churning = BucketStats(index=0, end_time=0.1, views_entered=5, committed_txns=0)
        healthy = BucketStats(index=1, end_time=0.2, views_entered=5, committed_txns=40)
        assert rule.is_bad(churning)
        assert not rule.is_bad(healthy)

    def test_spec_lead_collapse_never_arms_on_baselines(self):
        rule = SpecLeadCollapseRule()
        from repro.obs.detect import BucketStats

        # A 2-phase protocol: plenty of completions, zero speculative.
        for index in range(20):
            stats = BucketStats(index=index, end_time=index * 0.1,
                                completed=50, responded_speculative=0)
            assert not rule.is_bad(stats)

    def test_chaos_report_renders_alert_table(self):
        chaos = {
            "incidents": [],
            "crashes": 1,
            "restarts": 1,
            "alerts": [Alert("commit-stall", 0.36, 0.54, "committed 0").as_dict()],
        }
        text = format_chaos_report(chaos)
        assert "SLO detector alerts" in text
        assert "commit-stall" in text


class TestChaosIntegration:
    def test_blackout_alert_brackets_the_injected_fault(self):
        plan = chaos_preset("blackout", n=4, at=0.3, down_for=0.15)
        result = run_experiment(
            ExperimentSpec(
                protocol="hotstuff-1",
                duration=1.0,
                faults=plan.to_dict(),
                trace=True,
                trace_bucket=0.02,
            )
        )
        chaos = result.chaos
        alerts = [a for a in chaos["alerts"] if a["rule"] == "commit-stall"]
        assert alerts, "blackout must raise a commit-stall alert"
        recovery = max(i["first_commit_at"] for i in chaos["incidents"])
        # Raised while the cluster was down: after the crash, before the
        # first post-restart commit (plus hysteresis: 3 buckets of 20 ms).
        assert 0.3 <= alerts[0]["raised_at"] <= recovery + 3 * 0.02
        assert alerts[0]["cleared_at"] is not None
        # The raise/clear pair also exists as trace instants for exports.
        instant_kinds = {inst.kind for inst in result.trace.instants}
        assert {"alert", "alert-cleared"} <= instant_kinds

    def test_fault_actions_are_first_class_trace_instants(self):
        plan = chaos_preset("kill-replica", n=4, at=0.2, down_for=0.1, replica=1)
        result = run_experiment(
            ExperimentSpec(
                protocol="hotstuff-1", duration=0.6, faults=plan.to_dict(), trace=True
            )
        )
        faults = [inst for inst in result.trace.instants if inst.kind == "fault"]
        labels = [inst.label for inst in faults]
        assert "crash" in labels and "restart" in labels
        crash = next(inst for inst in faults if inst.label == "crash")
        assert crash.replica == 1
        assert crash.t == pytest.approx(0.2, abs=0.05)

    def test_detector_can_be_disabled(self):
        plan = chaos_preset("blackout", n=4, at=0.3, down_for=0.15)
        result = run_experiment(
            ExperimentSpec(
                protocol="hotstuff-1",
                duration=1.0,
                faults=plan.to_dict(),
                trace=True,
                trace_detect=False,
            )
        )
        assert "alerts" not in result.chaos
        assert not any(inst.kind == "alert" for inst in result.trace.instants)


class TestSpecValidation:
    def test_nonpositive_trace_bucket_rejected(self):
        with pytest.raises(ConfigurationError, match="trace_bucket"):
            ExperimentSpec(protocol="hotstuff-1", trace=True, trace_bucket=0.0).validate()
        with pytest.raises(ConfigurationError, match="trace_bucket"):
            ExperimentSpec(protocol="hotstuff-1", trace=True, trace_bucket=-0.5).validate()

    def test_recorder_rejects_nonpositive_caps(self):
        with pytest.raises(ConfigurationError):
            TraceRecorder(clock=FakeClock(), bucket=0.0)
        with pytest.raises(ConfigurationError):
            TraceRecorder(clock=FakeClock(), max_txns=0)
        with pytest.raises(ConfigurationError):
            TraceRecorder(clock=FakeClock(), max_events=0)

    def test_unknown_sampler_rejected(self):
        with pytest.raises(ConfigurationError, match="trace_sampler"):
            ExperimentSpec(protocol="hotstuff-1", trace_sampler="bogus").validate()

    def test_stream_implies_trace(self, tmp_path):
        spec = ExperimentSpec(
            protocol="hotstuff-1", trace_stream=str(tmp_path / "s.jsonl")
        ).validate()
        assert spec.trace

    def test_scrape_port_is_live_only(self):
        with pytest.raises(ConfigurationError, match="scrape_port"):
            ExperimentSpec(protocol="hotstuff-1", scrape_port=9100).validate()
        with pytest.raises(ConfigurationError, match="scrape_port"):
            ExperimentSpec(protocol="hotstuff-1", mode="live", scrape_port=70000).validate()


class TestTracedStreamedRuns:
    def test_streamed_sim_run_matches_untraced(self, tmp_path):
        base = dict(protocol="hotstuff-1", duration=0.3, seed=11)
        untraced = run_experiment(ExperimentSpec(**base))
        streamed = run_experiment(
            ExperimentSpec(trace_stream=str(tmp_path / "s.jsonl"), **base)
        )
        # Streaming (sink + detector + closure machinery) must not perturb
        # the simulation any more than plain tracing does.
        assert untraced.summary.as_dict() == streamed.summary.as_dict()
        restored = read_jsonl(str(tmp_path / "s.jsonl"))
        assert restored.counts["committed"] == streamed.trace.counts["committed"]
        assert restored.timeline()

    def test_filtered_windows_spans_and_buckets(self):
        result = run_experiment(
            ExperimentSpec(protocol="hotstuff-1", duration=0.4, trace=True,
                           trace_bucket=0.05)
        )
        full = result.trace
        # Post-warmup spans cluster right after warmup (0.2 s); window a
        # strict sub-range of them.
        window = full.filtered(since=0.2, until=0.22)
        assert 0 < len(window.spans) < len(full.spans)
        for span in window.spans.values():
            assert 0.2 <= min(span.events.values()) < 0.22
        assert window.buckets
        for bucket in window.buckets.values():
            assert 0.2 <= bucket.index * window.bucket_width < 0.22


def fake_replica(view=7, height=3, halted=False):
    class Ledger:
        committed = [object()] * height

    class Replica:
        pass

    replica = Replica()
    replica.ledger = Ledger()
    replica.current_view = view
    replica.halted = halted
    return replica


class Mempool:
    def peek_count(self):
        return 42


class TestScrapeEndpoints:
    def run_async(self, coro):
        return asyncio.new_event_loop().run_until_complete(coro)

    async def _get(self, port, path):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(f"GET {path} HTTP/1.1\r\nHost: x\r\n\r\n".encode())
        await writer.drain()
        raw = await reader.read()
        writer.close()
        head, _, body = raw.partition(b"\r\n\r\n")
        status = int(head.split()[1])
        return status, body.decode()

    def test_concurrent_scrapes_and_all_routes(self):
        replica = fake_replica()
        telemetry = ReplicaTelemetry(
            0, lambda: replica, FakeClock(), tracer=recorder_with(), mempool=Mempool()
        )
        server = ScrapeServer(telemetry.routes())

        async def scenario():
            await server.start()
            results = await asyncio.gather(
                *[self._get(server.port, "/metrics") for _ in range(8)],
                self._get(server.port, "/healthz"),
                self._get(server.port, "/readyz"),
                self._get(server.port, "/nope"),
            )
            await server.close()
            return results

        results = self.run_async(scenario())
        metrics = results[:8]
        assert all(status == 200 for status, _ in metrics)
        samples = parse_prometheus(metrics[0][1])
        labels = frozenset({("replica", "0")})
        assert samples[("repro_replica_up", labels)] == 1.0
        assert samples[("repro_replica_view", labels)] == 7.0
        assert samples[("repro_replica_committed_height", labels)] == 3.0
        assert samples[("repro_replica_mempool_depth", labels)] == 42.0
        health_status, health_body = results[8]
        assert health_status == 200 and json.loads(health_body)["up"] is True
        assert results[9][0] == 200  # readyz: no commit expected yet → ready
        assert results[10][0] == 404

    def test_down_replica_reports_503(self):
        telemetry = ReplicaTelemetry(1, lambda: None, FakeClock())
        status, _, body = telemetry.healthz()
        assert status == 503
        assert json.loads(body)["up"] is False
        halted = fake_replica(halted=True)
        telemetry = ReplicaTelemetry(1, lambda: halted, FakeClock())
        assert telemetry.healthz()[0] == 503

    def test_stalled_replica_fails_readiness(self):
        clock = FakeClock()
        replica = fake_replica(height=5)
        telemetry = ReplicaTelemetry(0, lambda: replica, clock, ready_max_age=1.0)
        telemetry.probe()  # observe height 5 at t=0
        clock.now = 10.0   # no height change for 10 s
        status, _, body = telemetry.readyz()
        assert status == 503
        assert json.loads(body)["stalled"] is True

    def test_live_run_serves_scrapes_mid_run(self):
        from repro.live.deploy import run_live_experiment

        spec = ExperimentSpec(
            protocol="hotstuff-1",
            mode="live",
            duration=8.0,
            warmup=0.05,
            view_timeout=0.05,
            trace=True,
            scrape_port=0,
        )
        started = threading.Event()
        ports = []
        scraped = {}

        def on_started(info):
            ports.extend(info["scrape_ports"])
            started.set()

        holder = {}

        def run():
            holder["result"] = run_live_experiment(
                spec, target_ops=600, on_started=on_started
            )

        worker = threading.Thread(target=run)
        worker.start()
        try:
            assert started.wait(timeout=30.0), "live cluster never started"
            assert len(ports) == spec.n
            for port in ports[:2]:
                with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/metrics", timeout=5.0
                ) as response:
                    scraped[port] = (response.status, response.read().decode())
            with urllib.request.urlopen(
                f"http://127.0.0.1:{ports[0]}/healthz", timeout=5.0
            ) as response:
                health = json.loads(response.read().decode())
        finally:
            worker.join(timeout=60.0)
        assert not worker.is_alive()
        assert holder["result"].summary.committed_txns > 0
        for status, body in scraped.values():
            assert status == 200
            assert "repro_replica_up" in body
            assert "repro_trace_spans_sampled" in body  # tracer exposition rides along
        assert health["replica"] == 0


class TestWatchAndCli:
    def make_stream(self, tmp_path) -> str:
        path = str(tmp_path / "stream.jsonl")
        run_experiment(
            ExperimentSpec(protocol="hotstuff-1", duration=0.3, trace_stream=path)
        )
        return path

    def test_watch_file_renders_frames(self, tmp_path, capsys):
        path = self.make_stream(tmp_path)
        frames = []
        recorder = watch_file(path, interval=0.0, frames=2,
                              out=frames.append, clear=False)
        assert len(frames) == 2
        assert "speculation lead" in frames[-1]
        assert recorder.counts["committed"] > 0

    def test_dashboard_surfaces_alerts_and_faults(self):
        recorder = recorder_with()
        recorder.instant("fault", label="crash", t=0.3, replica=1)
        recorder.instant("alert", label="commit-stall", t=0.36,
                         data={"detail": "committed 0"})
        assert [a[0] for a in active_alerts(recorder)] == ["commit-stall"]
        text = render_dashboard(recorder, clear=False)
        assert "ACTIVE ALERTS" in text and "commit-stall" in text
        assert "crash replica 1" in text
        recorder.instant("alert-cleared", label="commit-stall", t=0.6)
        assert active_alerts(recorder) == []

    def test_cli_watch_one_frame(self, tmp_path, capsys):
        path = self.make_stream(tmp_path)
        assert main(["watch", path, "--frames", "1", "--no-clear"]) == 0
        out = capsys.readouterr().out
        assert "repro watch" in out and "timeline" in out

    def test_cli_watch_requires_a_source(self, capsys):
        assert main(["watch"]) == 2
        assert "trace-stream" in capsys.readouterr().err

    def test_cli_trace_windowing(self, tmp_path, capsys):
        path = self.make_stream(tmp_path)
        assert main(["trace", path, "--since", "0.1", "--until", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "trace window: [0.1s, 0.25s)" in out
        assert "lifecycle event counters" in out

    def test_cli_run_with_stream_and_sampler(self, tmp_path, capsys):
        path = str(tmp_path / "s.jsonl")
        code = main([
            "run", "--protocol", "hotstuff-1", "--duration", "0.3",
            "--trace-stream", path, "--trace-sampler", "tail",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert f"streamed trace: {path}" in out
        assert "phase-level latency breakdown" in out
        assert read_jsonl(path).counts["committed"] > 0

"""Integration tests: full simulated deployments of every protocol variant.

These tests run short end-to-end simulations (4–7 replicas, small batches)
and check the properties the paper argues for: liveness, safety across
replicas, the latency ordering HotStuff-1 < HotStuff-2 < HotStuff, equal
throughput across the streamlined protocols, speculation and early finality
for the HotStuff-1 variants, and correct client quorum sizes.
"""

from __future__ import annotations

import pytest

from repro.core.registry import EVALUATION_PROTOCOLS, PROTOCOLS, client_quorum_for, replica_class_for
from repro.consensus.config import ProtocolConfig
from repro.errors import ConfigurationError
from repro.experiments.runner import ExperimentSpec, run_experiment


def small_run(protocol, **overrides):
    spec = ExperimentSpec(
        protocol=protocol,
        n=overrides.pop("n", 4),
        batch_size=overrides.pop("batch_size", 20),
        duration=overrides.pop("duration", 0.25),
        warmup=overrides.pop("warmup", 0.05),
        seed=overrides.pop("seed", 11),
        **overrides,
    )
    return run_experiment(spec)


@pytest.fixture(scope="module")
def baseline_results():
    """One short fault-free run per protocol, shared by several tests."""
    return {protocol: small_run(protocol) for protocol in PROTOCOLS}


class TestLiveness:
    def test_every_protocol_commits_transactions(self, baseline_results):
        for protocol, result in baseline_results.items():
            assert result.summary.committed_txns > 0, protocol
            assert result.throughput > 0, protocol

    def test_views_advance_continuously(self, baseline_results):
        for protocol, result in baseline_results.items():
            views = [replica.current_view for replica in result.replicas]
            # Streamlined protocols advance a view per phase; the slotted variant
            # advances a view per timer expiration, so its count is lower.
            minimum = 5 if protocol == "hotstuff-1-slotting" else 10
            assert max(views) > minimum, protocol

    def test_liveness_with_f_crashed_replicas(self):
        from repro.consensus.byzantine import CrashBehavior

        result = small_run("hotstuff-1", n=4, behaviors={3: CrashBehavior()}, duration=0.4)
        assert result.summary.committed_txns > 0

    def test_slotted_liveness_with_crash(self):
        from repro.consensus.byzantine import CrashBehavior

        result = small_run("hotstuff-1-slotting", n=4, behaviors={3: CrashBehavior()}, duration=0.4)
        assert result.summary.committed_txns > 0


class TestSafety:
    def test_honest_ledgers_are_prefix_consistent(self, baseline_results):
        for protocol, result in baseline_results.items():
            chains = [
                [block.block_hash for block in replica.ledger.committed.blocks()]
                for replica in result.replicas
            ]
            longest = max(chains, key=len)
            for chain in chains:
                assert chain == longest[: len(chain)], protocol

    def test_state_machines_agree_on_common_prefix(self, baseline_results):
        for protocol, result in baseline_results.items():
            # Compare the committed-ledger digests of the two replicas with the
            # shortest ledgers (their full states may differ only by speculation).
            replicas = sorted(result.replicas, key=lambda r: len(r.ledger.committed))
            short, other = replicas[0], replicas[1]
            prefix_length = len(short.ledger.committed)
            digest_a = [b.block_hash for b in short.ledger.committed.blocks()]
            digest_b = [b.block_hash for b in other.ledger.committed.blocks()][:prefix_length]
            assert digest_a == digest_b, protocol

    def test_committed_blocks_form_a_chain(self, baseline_results):
        for protocol, result in baseline_results.items():
            replica = result.replicas[0]
            blocks = replica.ledger.committed.blocks()
            for parent, child in zip(blocks, blocks[1:]):
                assert child.parent_hash == parent.block_hash, protocol


class TestLatencyOrdering:
    def test_hotstuff1_has_lowest_latency(self, baseline_results):
        latency = {p: baseline_results[p].latency_ms for p in EVALUATION_PROTOCOLS}
        assert latency["hotstuff-1"] < latency["hotstuff-2"] < latency["hotstuff"]

    def test_latency_reduction_magnitude_matches_paper_shape(self, baseline_results):
        latency = {p: baseline_results[p].latency_ms for p in ("hotstuff", "hotstuff-2", "hotstuff-1")}
        vs_hotstuff = 1 - latency["hotstuff-1"] / latency["hotstuff"]
        vs_hotstuff2 = 1 - latency["hotstuff-1"] / latency["hotstuff-2"]
        # Paper: up to 41.5% lower than HotStuff and 24.2% lower than HotStuff-2.
        assert 0.25 <= vs_hotstuff <= 0.55
        assert 0.10 <= vs_hotstuff2 <= 0.40

    def test_streamlined_protocols_have_similar_throughput(self, baseline_results):
        throughputs = [baseline_results[p].throughput for p in ("hotstuff", "hotstuff-2", "hotstuff-1")]
        assert max(throughputs) / min(throughputs) < 1.15

    def test_basic_variant_has_roughly_half_throughput(self, baseline_results):
        basic = baseline_results["hotstuff-1-basic"].throughput
        streamlined = baseline_results["hotstuff-1"].throughput
        assert 0.3 < basic / streamlined < 0.7


class TestSpeculation:
    def test_hotstuff1_variants_speculate(self, baseline_results):
        for protocol in ("hotstuff-1", "hotstuff-1-basic", "hotstuff-1-slotting"):
            assert baseline_results[protocol].summary.speculative_executions > 0, protocol

    def test_baselines_never_speculate(self, baseline_results):
        for protocol in ("hotstuff", "hotstuff-2"):
            assert baseline_results[protocol].summary.speculative_executions == 0, protocol

    def test_clients_complete_on_speculative_responses(self, baseline_results):
        samples = baseline_results["hotstuff-1"].client_pool.metrics.samples
        speculative_fraction = sum(1 for s in samples if s.speculative) / len(samples)
        assert speculative_fraction > 0.8

    def test_no_rollbacks_in_fault_free_runs(self, baseline_results):
        for protocol, result in baseline_results.items():
            assert result.summary.rollbacks == 0, protocol

    def test_disabling_speculation_removes_latency_advantage(self):
        with_speculation = small_run("hotstuff-1", seed=21)
        without_speculation = small_run("hotstuff-1", seed=21, speculation_enabled=False)
        assert without_speculation.latency_ms > with_speculation.latency_ms
        assert without_speculation.summary.speculative_executions == 0


class TestSlotting:
    def test_leaders_propose_multiple_slots_per_view(self):
        result = small_run("hotstuff-1-slotting", duration=0.3)
        slots_per_leader = [replica.slots_proposed_total for replica in result.replicas]
        views_led = max(replica.current_view for replica in result.replicas) / result.spec.n
        assert max(slots_per_leader) > views_led  # strictly more slots than views led

    def test_slotted_blocks_carry_view_and_slot_numbers(self):
        result = small_run("hotstuff-1-slotting", duration=0.3)
        blocks = result.replicas[0].ledger.committed.blocks()
        slots_seen = {block.slot for block in blocks}
        assert max(slots_seen) >= 2

    def test_slotted_matches_streamlined_throughput_fault_free(self):
        slotted = small_run("hotstuff-1-slotting", duration=0.3)
        streamlined = small_run("hotstuff-1", duration=0.3)
        assert slotted.throughput > 0.7 * streamlined.throughput


class TestRegistry:
    def test_all_five_protocols_registered(self):
        assert set(PROTOCOLS) == {
            "hotstuff",
            "hotstuff-2",
            "hotstuff-1",
            "hotstuff-1-basic",
            "hotstuff-1-slotting",
        }

    def test_replica_class_lookup(self):
        for name, cls in PROTOCOLS.items():
            assert replica_class_for(name) is cls

    def test_unknown_protocol_raises(self):
        with pytest.raises(ConfigurationError):
            replica_class_for("pbft")

    def test_client_quorums_match_paper(self):
        config = ProtocolConfig(n=31)
        assert client_quorum_for("hotstuff", config) == config.f + 1
        assert client_quorum_for("hotstuff-2", config) == config.f + 1
        assert client_quorum_for("hotstuff-1", config) == config.n - config.f
        assert client_quorum_for("hotstuff-1-slotting", config) == config.n - config.f


class TestWorkloadIntegration:
    def test_tpcc_workload_runs_end_to_end(self):
        result = small_run(
            "hotstuff-1",
            workload="tpcc",
            workload_kwargs={"warehouses": 1, "items": 50},
            duration=0.2,
        )
        assert result.summary.committed_txns > 0

    def test_tpcc_is_slower_than_ycsb(self):
        ycsb = small_run("hotstuff-1", batch_size=50, duration=0.3)
        tpcc = small_run(
            "hotstuff-1",
            batch_size=50,
            duration=0.3,
            workload="tpcc",
            workload_kwargs={"warehouses": 1, "items": 50},
        )
        assert tpcc.throughput < ycsb.throughput

"""Integration tests for the Byzantine attacks of §7.3.

Each test runs a short deployment with the attack behaviour installed and
checks the qualitative claim the paper makes: the attack hurts the protocols
without slotting and leaves HotStuff-1 with slotting (mostly) unaffected.
"""

from __future__ import annotations

import pytest

from repro.consensus.byzantine import (
    CrashBehavior,
    HonestBehavior,
    RollbackAttackBehavior,
    SlowLeaderBehavior,
    TailForkingBehavior,
)
from repro.experiments.runner import ExperimentSpec, run_experiment


def run_with_behaviors(protocol, behaviors, n=7, duration=0.4, view_timeout=0.01, seed=13):
    spec = ExperimentSpec(
        protocol=protocol,
        n=n,
        batch_size=20,
        duration=duration,
        warmup=0.1,
        seed=seed,
        behaviors=behaviors,
        view_timeout=view_timeout,
    )
    return run_experiment(spec)


class TestBehaviorUnits:
    def test_honest_behavior_defaults(self):
        behavior = HonestBehavior()
        assert not behavior.is_byzantine
        assert not behavior.is_crashed()
        assert behavior.propose_delay(None, 1) == 0.0
        assert behavior.equivocal_proposal(None, 1, None) is None
        assert not behavior.votes_unsafely(None, None)

    def test_crash_behavior_flags(self):
        behavior = CrashBehavior()
        assert behavior.is_byzantine
        assert behavior.is_crashed()

    def test_attack_behaviors_are_flagged_byzantine(self):
        assert SlowLeaderBehavior().is_byzantine
        assert TailForkingBehavior().is_byzantine
        assert RollbackAttackBehavior(victims=[1]).is_byzantine


class TestLeaderSlowness:
    def test_slow_leaders_degrade_streamlined_hotstuff1(self):
        clean = run_with_behaviors("hotstuff-1", {})
        attacked = run_with_behaviors("hotstuff-1", {0: SlowLeaderBehavior(), 1: SlowLeaderBehavior()})
        assert attacked.throughput < 0.8 * clean.throughput
        assert attacked.latency_ms > clean.latency_ms

    def test_slotting_mitigates_slow_leaders(self):
        clean = run_with_behaviors("hotstuff-1-slotting", {})
        attacked = run_with_behaviors(
            "hotstuff-1-slotting", {0: SlowLeaderBehavior(), 1: SlowLeaderBehavior()}
        )
        assert attacked.throughput > 0.85 * clean.throughput


class TestTailForking:
    def test_tail_forking_degrades_streamlined_hotstuff1(self):
        clean = run_with_behaviors("hotstuff-1", {})
        attacked = run_with_behaviors("hotstuff-1", {0: TailForkingBehavior(), 1: TailForkingBehavior()})
        assert attacked.throughput < 0.9 * clean.throughput

    def test_tail_forked_transactions_eventually_commit(self):
        attacked = run_with_behaviors("hotstuff-1", {0: TailForkingBehavior()}, duration=0.5)
        # Liveness is preserved: clients still make progress despite forked blocks.
        assert attacked.summary.committed_txns > 0

    def test_slotting_resists_tail_forking(self):
        clean = run_with_behaviors("hotstuff-1-slotting", {})
        attacked = run_with_behaviors(
            "hotstuff-1-slotting", {0: TailForkingBehavior(), 1: TailForkingBehavior()}
        )
        assert attacked.throughput > 0.85 * clean.throughput


class TestRollbackAttack:
    def test_rollback_attack_forces_rollbacks_without_slotting(self):
        behaviors = {0: RollbackAttackBehavior(victims=[2, 3], colluders=[0, 1]),
                     1: RollbackAttackBehavior(victims=[2, 3], colluders=[0, 1])}
        attacked = run_with_behaviors("hotstuff-1", behaviors, duration=0.5)
        assert attacked.summary.rollbacks > 0
        assert attacked.summary.rolled_back_txns > 0

    def test_rollback_attack_does_not_break_client_safety(self):
        behaviors = {0: RollbackAttackBehavior(victims=[2, 3], colluders=[0])}
        attacked = run_with_behaviors("hotstuff-1", behaviors, duration=0.5)
        # Committed ledgers of honest replicas stay prefix-consistent (checked by
        # the runner) and clients only ever complete transactions that commit.
        committed_ids = set()
        for block in attacked.replicas[2].ledger.committed.blocks():
            committed_ids.update(txn.txn_id for txn in block.transactions)
        sampled = [s.txn_id for s in attacked.client_pool.metrics.samples]
        missing = [txn_id for txn_id in sampled if txn_id not in committed_ids]
        # Every completed transaction is committed somewhere in the prefix of an
        # honest replica (allowing for blocks committed after the window closed).
        assert len(missing) <= attacked.spec.batch_size

    def test_rollback_attack_degrades_throughput(self):
        clean = run_with_behaviors("hotstuff-1", {})
        behaviors = {0: RollbackAttackBehavior(victims=[2, 3], colluders=[0, 1]),
                     1: RollbackAttackBehavior(victims=[2, 3], colluders=[0, 1])}
        attacked = run_with_behaviors("hotstuff-1", behaviors, duration=0.5)
        assert attacked.throughput < clean.throughput

    def test_slotting_confines_rollback_attack(self):
        clean = run_with_behaviors("hotstuff-1-slotting", {})
        behaviors = {0: RollbackAttackBehavior(victims=[2, 3], colluders=[0])}
        attacked = run_with_behaviors("hotstuff-1-slotting", behaviors, duration=0.5)
        assert attacked.summary.rollbacks == 0
        assert attacked.throughput > 0.85 * clean.throughput


class TestDelayInjection:
    def test_delays_beyond_f_replicas_slow_the_system(self):
        clean = ExperimentSpec(protocol="hotstuff-1", n=7, batch_size=20, duration=0.3, warmup=0.05, seed=5)
        impacted = ExperimentSpec(
            protocol="hotstuff-1",
            n=7,
            batch_size=20,
            duration=0.6,
            warmup=0.05,
            seed=5,
            delay_injection={"impacted": [4, 5, 6], "extra_delay": 0.02},
            view_timeout=0.1,
            delta=0.02,
        )
        clean_result = run_experiment(clean)
        impacted_result = run_experiment(impacted)
        assert impacted_result.throughput < clean_result.throughput
        assert impacted_result.latency_ms > clean_result.latency_ms

    def test_crossing_f_plus_one_is_the_pronounced_jump(self):
        """The paper: the impact is most pronounced when k goes from f to f+1."""

        def run_with_impacted(count):
            return run_experiment(
                ExperimentSpec(
                    protocol="hotstuff-1",
                    n=7,
                    batch_size=20,
                    duration=0.6,
                    warmup=0.1,
                    seed=5,
                    delay_injection={"impacted": list(range(7 - count, 7)), "extra_delay": 0.02},
                    view_timeout=0.1,
                    delta=0.02,
                )
            )

        at_f = run_with_impacted(2)
        beyond_f = run_with_impacted(3)
        # Once every certificate needs an impacted replica, throughput drops and
        # latency rises relative to the k = f case.
        assert beyond_f.throughput < at_f.throughput
        assert beyond_f.latency_ms > at_f.latency_ms

"""Tests for the experiment runner, scenario builders and report rendering."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.report import format_series, pivot, print_series
from repro.experiments.runner import ExperimentSpec, run_experiment
from repro.experiments.scenarios import (
    batching_series,
    latency_breakdown_series,
    leader_slowness_series,
    rollback_attack_series,
    scalability_series,
    slotting_ablation_series,
    tail_forking_series,
)


class TestRunner:
    def test_run_returns_summary_and_stats(self):
        result = run_experiment(
            ExperimentSpec(protocol="hotstuff-1", n=4, batch_size=10, duration=0.15, warmup=0.02)
        )
        assert result.summary.protocol == "hotstuff-1"
        assert result.summary.committed_txns > 0
        assert result.network_stats["messages_sent"] > 0
        assert result.latency_ms > 0
        assert len(result.replicas) == 4

    def test_seeded_runs_are_reproducible(self):
        spec = dict(protocol="hotstuff-2", n=4, batch_size=10, duration=0.15, warmup=0.02, seed=99)
        first = run_experiment(ExperimentSpec(**spec))
        second = run_experiment(ExperimentSpec(**spec))
        assert first.summary.committed_txns == second.summary.committed_txns
        assert first.summary.avg_latency == pytest.approx(second.summary.avg_latency)

    def test_explicit_client_count_is_respected(self):
        result = run_experiment(
            ExperimentSpec(
                protocol="hotstuff-1", n=4, batch_size=10, duration=0.1, warmup=0.02, num_clients=7
            )
        )
        assert result.client_pool.num_clients == 7

    def test_geo_spec_places_clients_near_local_replicas(self):
        result = run_experiment(
            ExperimentSpec(
                protocol="hotstuff-1",
                n=4,
                batch_size=10,
                duration=0.4,
                warmup=0.1,
                regions=["virginia", "london"],
                view_timeout=0.5,
                delta=0.05,
            )
        )
        # Replicas 0 and 2 are in Virginia (round-robin placement), and the
        # client pool only targets co-located replicas.
        assert set(result.client_pool.target_replicas) == {0, 2}
        assert result.summary.committed_txns > 0


class TestSpecValidation:
    def test_valid_spec_passes_and_chains(self):
        spec = ExperimentSpec(protocol="hotstuff-1", n=4, duration=0.2, warmup=0.05)
        assert spec.validate() is spec

    @pytest.mark.parametrize(
        "kwargs, fragment",
        [
            ({"protocol": "paxos"}, "unknown protocol"),
            ({"n": 3}, "n must be >= 4"),
            ({"batch_size": 0}, "batch_size"),
            ({"duration": 0.0}, "duration"),
            ({"duration": 0.1, "warmup": 0.1}, "warmup"),
            ({"warmup": -0.1}, "warmup"),
            ({"workload": "tatp"}, "unknown workload"),
            ({"view_timeout": 0.0}, "view_timeout"),
        ],
    )
    def test_bad_specs_raise_configuration_error(self, kwargs, fragment):
        defaults = dict(protocol="hotstuff-1", n=4, duration=0.3, warmup=0.05)
        defaults.update(kwargs)
        with pytest.raises(ConfigurationError, match=fragment):
            ExperimentSpec(**defaults).validate()

    def test_run_experiment_validates_at_entry(self):
        with pytest.raises(ConfigurationError):
            run_experiment(ExperimentSpec(protocol="hotstuff-1", n=2, duration=0.2))

    def test_to_row_includes_extras(self):
        result = run_experiment(
            ExperimentSpec(protocol="hotstuff-1", n=4, batch_size=10, duration=0.15, warmup=0.02)
        )
        row = result.to_row(n=4, variant="x")
        assert row["protocol"] == "hotstuff-1"
        assert row["n"] == 4 and row["variant"] == "x"
        assert row["throughput_tps"] == round(result.throughput, 1)


class TestScenarioBuilders:
    def test_scalability_series_rows_have_expected_columns(self):
        rows = scalability_series(
            protocols=("hotstuff-2", "hotstuff-1"), replica_counts=(4,), duration=0.15, warmup=0.03
        )
        assert len(rows) == 2
        assert {"protocol", "n", "throughput_tps", "avg_latency_ms"} <= set(rows[0])

    def test_batching_series_sweeps_batch_sizes(self):
        rows = batching_series(
            protocols=("hotstuff-1",), batch_sizes=(10, 50), n=4, duration=0.15, warmup=0.03
        )
        assert [row["batch_size"] for row in rows] == [10, 50]

    def test_latency_breakdown_reports_reductions(self):
        rows = latency_breakdown_series(
            protocols=("hotstuff", "hotstuff-2", "hotstuff-1"),
            replica_counts=(4,),
            batch_size=20,
            duration=0.2,
            warmup=0.05,
        )
        reductions = [row for row in rows if "latency_reduction_pct" in row]
        assert len(reductions) == 2
        assert all(row["latency_reduction_pct"] > 0 for row in reductions)

    def test_leader_slowness_series_runs(self):
        rows = leader_slowness_series(
            protocols=("hotstuff-1",),
            slow_leader_counts=(0, 1),
            view_timeouts=(0.01,),
            n=4,
            batch_size=10,
            duration=0.2,
            warmup=0.05,
        )
        assert len(rows) == 2
        slow = {row["slow_leaders"]: row["throughput_tps"] for row in rows}
        assert slow[1] <= slow[0]

    def test_tail_forking_series_runs(self):
        rows = tail_forking_series(
            protocols=("hotstuff-1",), faulty_counts=(0, 1), n=4, batch_size=10, duration=0.2, warmup=0.05
        )
        assert len(rows) == 2

    def test_rollback_series_includes_rollback_counts(self):
        rows = rollback_attack_series(
            protocols=("hotstuff-1",), faulty_counts=(1,), n=7, batch_size=10, duration=0.3, warmup=0.05
        )
        assert "rollbacks" in rows[0]

    def test_slotting_ablation_covers_four_variants(self):
        rows = slotting_ablation_series(
            slow_leader_count=1, n=4, batch_size=10, duration=0.2, warmup=0.05
        )
        assert len(rows) == 4
        assert {row["variant"] for row in rows} == {
            "speculation on, no slotting",
            "speculation off, no slotting",
            "speculation on, slotting",
            "speculation off, slotting",
        }


class TestReport:
    def test_format_series_renders_all_columns(self):
        rows = [
            {"protocol": "hotstuff-1", "n": 4, "throughput_tps": 100.0},
            {"protocol": "hotstuff-2", "n": 4, "throughput_tps": 99.0, "extra": "x"},
        ]
        text = format_series(rows, title="Figure 8 (a)")
        assert "Figure 8 (a)" in text
        assert "hotstuff-1" in text
        assert "extra" in text

    def test_format_series_empty(self):
        assert "(no data)" in format_series([], title="empty")

    def test_print_series_writes_to_stdout(self, capsys):
        print_series([{"protocol": "hotstuff-1", "throughput_tps": 10}], title="t")
        captured = capsys.readouterr()
        assert "hotstuff-1" in captured.out

    def test_pivot_groups_by_protocol(self):
        rows = [
            {"protocol": "a", "n": 4, "throughput_tps": 1.0},
            {"protocol": "a", "n": 8, "throughput_tps": 2.0},
            {"protocol": "b", "n": 4, "throughput_tps": 3.0},
        ]
        table = pivot(rows, index="n", metric="throughput_tps")
        assert table["a"] == {4: 1.0, 8: 2.0}
        assert table["b"] == {4: 3.0}

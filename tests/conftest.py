"""Shared fixtures for the HotStuff-1 reproduction test suite."""

from __future__ import annotations

import pytest

from repro.consensus.certificates import CertificateAuthority, CertKind
from repro.consensus.config import ProtocolConfig
from repro.crypto.threshold import ThresholdScheme
from repro.ledger.block import Block, make_genesis_block
from repro.ledger.blockstore import BlockStore
from repro.ledger.kvstore import KVStateMachine
from repro.ledger.speculative import SpeculativeLedger
from repro.ledger.transaction import Transaction
from repro.sim.scheduler import Simulator


@pytest.fixture
def sim():
    """A fresh deterministic simulator."""
    return Simulator(seed=42)


@pytest.fixture
def config4():
    """A minimal 4-replica protocol configuration."""
    return ProtocolConfig(n=4, batch_size=10, view_timeout=0.01, delta=0.001)


@pytest.fixture
def scheme4(config4):
    """Threshold scheme matching the 4-replica configuration."""
    return ThresholdScheme(n=config4.n, threshold=config4.quorum, seed=7)


@pytest.fixture
def authority4(scheme4):
    """Certificate authority over the 4-replica threshold scheme."""
    return CertificateAuthority(scheme4)


@pytest.fixture
def block_store():
    """A block store rooted at genesis."""
    return BlockStore()


@pytest.fixture
def spec_ledger(block_store):
    """A speculative ledger over a KV state machine."""
    return SpeculativeLedger(KVStateMachine(), block_store)


def make_txn(index: int, key: str = "user1", value: str = "v") -> Transaction:
    """Build a simple YCSB-style write transaction."""
    return Transaction.create(
        client_id=1,
        operation="ycsb_write",
        payload={"key": key, "value": f"{value}{index}"},
        txn_id=1_000_000 + index,
    )


def build_chain(store: BlockStore, length: int, txns_per_block: int = 1, start_view: int = 1):
    """Append a linear chain of blocks to *store*; returns the blocks in order."""
    parent = store.genesis
    blocks = []
    for offset in range(length):
        view = start_view + offset
        txns = [make_txn(view * 100 + i, key=f"user{view}_{i}") for i in range(txns_per_block)]
        block = Block.build(
            view=view,
            slot=1,
            parent_hash=parent.block_hash,
            proposer=view % 4,
            transactions=txns,
        )
        store.add(block)
        blocks.append(block)
        parent = block
    return blocks


def certificate_for(authority: CertificateAuthority, config: ProtocolConfig, block: Block, kind=CertKind.PREPARE):
    """Form a valid certificate for *block* using votes from the first ``quorum`` replicas."""
    shares = [
        authority.create_vote(replica_id, kind, block.view, block.slot, block.block_hash)
        for replica_id in range(config.quorum)
    ]
    return authority.form_certificate(kind, block.view, block.slot, block.block_hash, shares)

"""Multi-host geo deployment: config, link shaping, distributed mempool, procs.

Covers the deployment layer the multi-process runtime is built from:

* :class:`DeploymentConfig` round-trips, validates endpoints, and derives the
  same per-link one-way delays as the simulator's geo tables;
* transport-level delay shaping actually delays frames (virginia↔hongkong
  p50 one-way ≥ 106 ms, straight from ``REGION_RTT_MS``);
* the distributed mempool never lets a transaction commit twice, even when a
  replica crashes, rejoins, and re-receives broadcast requests;
* a real 4-replica multi-process run commits a consistent prefix with no
  duplicates, matching the in-process runtime's guarantees;
* hotstuff-1's speculation lead stays positive under WAN delays (the geo
  ordering asserted by the CI geo-smoke job).
"""

from __future__ import annotations

import asyncio
import json
import statistics

import pytest

from repro.consensus.client import CLIENT_POOL_NODE_ID
from repro.consensus.messages import FetchRequest
from repro.errors import ConfigurationError
from repro.experiments.runner import ExperimentSpec, run_experiment
from repro.live.config import CLIENT_NODE_ID, DeploymentConfig, ReplicaEndpoint
from repro.live.deploy import geo_link_delays, run_live_experiment
from repro.live.procs import (
    run_multiprocess_experiment,
    spec_from_dict,
    spec_to_dict,
    validate_multiprocess_spec,
)
from repro.live.runtime import LiveCluster, LiveNode, WallClock
from repro.live.transport import AsyncTcpTransport
from repro.net.latency import REGION_RTT_MS

#: Geo ordering where consecutive rotating leaders sit far apart while the
#: client stays in central virginia — the placement under which hotstuff-1's
#: speculative responses beat replica-side commits (see TestGeoSpeculationLead).
GEO_ORDER = ["virginia", "london", "hongkong", "saopaulo", "zurich"]


class TestDeploymentConfig:
    def _config(self, regions=None):
        return DeploymentConfig(
            replicas=[
                ReplicaEndpoint(i, "127.0.0.1", 7000 + i,
                                region=regions[i] if regions else None)
                for i in range(4)
            ],
            client_host="127.0.0.1",
            client_port=7100,
            client_region="virginia" if regions else None,
        )

    def test_round_trips_through_json(self, tmp_path):
        config = self._config(regions=["virginia", "london", "hongkong", "saopaulo"])
        path = tmp_path / "deploy.json"
        config.dump(str(path))
        loaded = DeploymentConfig.load(str(path))
        assert loaded == config
        assert json.loads(path.read_text())["client"]["region"] == "virginia"

    def test_address_book_includes_the_client(self):
        book = self._config().address_book()
        assert book[2] == ("127.0.0.1", 7002)
        assert book[CLIENT_NODE_ID] == ("127.0.0.1", 7100)
        assert CLIENT_NODE_ID == CLIENT_POOL_NODE_ID  # one address space

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda c: c.replicas.pop(1), "exactly 0..2"),
            (lambda c: setattr(c.replicas[1], "port", 7000), "share"),
            (lambda c: setattr(c.replicas[0], "port", 0), "concrete port"),
            (lambda c: setattr(c, "client_port", 7003), "collides"),
            (lambda c: setattr(c.replicas[2], "region", "london"), "every replica"),
        ],
    )
    def test_validation_rejects_malformed_configs(self, mutate, message):
        config = self._config()
        mutate(config)
        with pytest.raises(ConfigurationError, match=message):
            config.validate()

    def test_validate_checks_spec_n(self):
        with pytest.raises(ConfigurationError, match="n=7"):
            self._config().validate(n=7)

    def test_link_delays_match_the_region_tables(self):
        config = self._config(regions=["virginia", "london", "hongkong", "saopaulo"])
        delays = config.link_delays_for(0)  # virginia replica
        va_hk = REGION_RTT_MS[frozenset(["virginia", "hongkong"])] / 2 / 1000.0
        assert delays[2] == pytest.approx(va_hk)  # one-way = RTT / 2
        assert delays[CLIENT_NODE_ID] < 0.001  # client co-located in virginia
        assert 0 not in delays  # no self entry
        # An unplaced deployment shapes nothing at all.
        assert self._config().link_delays_for(0) is None

    def test_local_factory_yields_a_valid_runnable_config(self):
        config = DeploymentConfig.local(4, regions=GEO_ORDER, client_region="virginia")
        assert config.n == 4
        assert config.regions() == {0: "virginia", 1: "london",
                                    2: "hongkong", 3: "saopaulo"}
        ports = {e.port for e in config.replicas} | {config.client_port}
        assert len(ports) == 5  # all distinct, concrete


class TestMultiprocessSpecValidation:
    def _spec(self, **overrides):
        base = dict(
            protocol="hotstuff-1", mode="live", n=4, duration=1.0,
            distributed_mempool=True, scrape_port=None,
        )
        base.update(overrides)
        return ExperimentSpec(**base)

    def test_accepts_a_well_formed_spec(self):
        validate_multiprocess_spec(self._spec())

    @pytest.mark.parametrize(
        "overrides, message",
        [
            (dict(mode="sim"), "mode='live'"),
            (dict(distributed_mempool=False), "distributed_mempool"),
            (dict(faults={"events": [{"at": 0.1, "action": "crash", "replica": 1}]}),
             "single-process"),
            (dict(scrape_port=0), "concrete scrape_port"),
        ],
    )
    def test_rejections(self, overrides, message):
        with pytest.raises(ConfigurationError, match=message):
            validate_multiprocess_spec(self._spec(**overrides))

    def test_storage_dir_is_accepted_children_get_private_subdirs(self):
        # Each child derives storage_dir/r<id>/ for itself (see
        # run_replica_process), so a shared storage_dir is no longer a
        # multi-writer hazard and must validate cleanly.
        validate_multiprocess_spec(self._spec(storage_dir="/tmp/cluster-wal"))

    def test_spec_survives_the_json_hop_to_child_processes(self):
        spec = self._spec(regions=list(GEO_ORDER), mempool_limit=500)
        spec.validate()  # derives broadcast_requests, as the child will
        rebuilt = spec_from_dict(spec_to_dict(spec))
        assert rebuilt == spec

    def test_unknown_spec_fields_are_rejected_not_dropped(self):
        doc = spec_to_dict(self._spec())
        doc["sneaky"] = True
        with pytest.raises(ConfigurationError, match="sneaky"):
            spec_from_dict(doc)


class TestLinkDelayShaping:
    def test_geo_link_delays_cover_replicas_and_client(self):
        spec = ExperimentSpec(protocol="hotstuff-1", mode="live", n=4,
                              regions=list(GEO_ORDER))
        delays = geo_link_delays(spec)
        va_hk = REGION_RTT_MS[frozenset(["virginia", "hongkong"])] / 2 / 1000.0
        assert delays[0][2] == pytest.approx(va_hk)
        assert delays[2][CLIENT_POOL_NODE_ID] == pytest.approx(va_hk)
        assert geo_link_delays(ExperimentSpec(protocol="hotstuff-1",
                                              mode="live", n=4)) is None

    def test_virginia_hongkong_p50_is_at_least_the_table_one_way(self):
        """Figures 8 e–h sanity: a shaped link really delays by RTT/2."""
        one_way = REGION_RTT_MS[frozenset(["virginia", "hongkong"])] / 2 / 1000.0

        class _Sink:
            def __init__(self, node_id):
                self.node_id = node_id
                self.received = []

            def deliver(self, envelope):
                self.received.append(envelope)

        async def scenario():
            clock = WallClock()
            left, right = AsyncTcpTransport(0, clock), AsyncTcpTransport(1, clock)
            left.register(_Sink(0))
            sink = _Sink(1)
            right.register(sink)
            left.set_link_delays({1: one_way})
            cluster = LiveCluster(clock, [LiveNode(0, left), LiveNode(1, right)])
            await cluster.start()
            try:
                message = FetchRequest(block_hash="d" * 64, requester=0)
                for _ in range(9):
                    left.send(0, 1, message)
                    await asyncio.sleep(0.005)
                for _ in range(400):
                    await asyncio.sleep(0.01)
                    if len(sink.received) >= 9:
                        break
            finally:
                await cluster.close()
            return [env.deliver_at - env.sent_at for env in sink.received]

        one_way_times = asyncio.run(scenario())
        assert len(one_way_times) == 9
        assert statistics.median(one_way_times) >= one_way


class TestDistributedMempoolDedup:
    def test_no_txn_commits_twice_under_rejoin_and_broadcast(self):
        """A crashed replica rejoins with a fresh pool, re-fed by client
        broadcast; per-pool in-flight/committed tracking must keep every
        transaction to exactly one committed slot per replica."""
        spec = ExperimentSpec(
            protocol="hotstuff-1", n=4, duration=3.0, warmup=0.2, seed=5,
            batch_size=20, distributed_mempool=True,
            faults={"events": [
                {"at": 0.8, "action": "crash", "replica": 1},
                {"at": 1.4, "action": "restart", "replica": 1},
            ]},
        )
        result = run_experiment(spec)
        assert result.summary.committed_txns > 0
        for replica in result.replicas:
            committed = [txn.txn_id
                         for block in replica.ledger.committed.blocks()
                         for txn in block.transactions]
            assert len(committed) == len(set(committed)), (
                f"replica {replica.replica_id} committed a txn twice"
            )

    def test_distributed_pools_are_per_replica_objects(self):
        spec = ExperimentSpec(protocol="hotstuff-1", n=4, duration=0.3,
                              seed=5, distributed_mempool=True)
        result = run_experiment(spec)
        pools = {id(replica.mempool) for replica in result.replicas}
        assert len(pools) == 4
        for replica in result.replicas:
            assert not replica.mempool.shared


class TestMultiprocessRun:
    def test_four_process_cluster_commits_a_consistent_prefix(self):
        """One OS process per replica; the committed prefixes must agree and
        no replica may commit any transaction twice — the same guarantees
        the in-process runtime gives, across real process boundaries."""
        spec = ExperimentSpec(
            protocol="hotstuff-1", mode="live", n=4, batch_size=8,
            duration=4.0, warmup=0.5, seed=7, view_timeout=1.0,
            distributed_mempool=True, scrape_port=None,
        )
        result = run_multiprocess_experiment(spec, rate=150.0, max_outstanding=300)
        info = result.multiproc
        assert info["prefix_consistent"] is True
        assert info["duplicate_commits"] == {}
        heights = info["committed_heights"]
        assert set(heights) == {0, 1, 2, 3}
        assert min(heights.values()) > 0
        assert result.summary.committed_txns > 0

        # The in-process runtime under the same spec upholds the same
        # guarantees — the cross-substrate equivalence the deployment
        # layer promises (wall-clock runs are not bytewise reproducible,
        # so equivalence is the safety surface, not the exact chain).
        live = run_live_experiment(spec, rate=150.0, max_outstanding=300)
        chains = [replica.ledger.committed.hashes() for replica in live.replicas]
        longest = max(chains, key=len)
        assert all(chain == longest[: len(chain)] for chain in chains)
        assert live.summary.committed_txns > 0


class TestGeoSpeculationLead:
    def test_spec_lead_is_positive_under_wan_delays(self):
        """The paper's §7 claim, measured: under cross-region delays the
        n − f speculative response quorum reaches the client before any
        replica commits the block (positive responded→committed lead)."""
        spec = ExperimentSpec(
            protocol="hotstuff-1", mode="live", n=4, batch_size=8,
            duration=8.0, warmup=1.0, seed=3, view_timeout=1.5,
            regions=list(GEO_ORDER), distributed_mempool=True, trace=True,
        )
        result = run_live_experiment(spec, rate=60.0, max_outstanding=200)
        breakdown = result.trace.phase_breakdown()
        assert breakdown.spans_used > 50
        assert breakdown.speculation_lead_s > 0
        # WAN delays dominate the client-visible latency: at least one
        # virginia→hongkong round trip end to end.
        assert result.summary.committed_txns > 0
        assert breakdown.response_s >= 0.212

"""Unit tests for the simulated network substrate."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.net.faults import FaultInjector
from repro.net.latency import ConstantLatency, GeoLatencyModel, JitteredLatency, DEFAULT_REGION_ORDER
from repro.net.network import SimNetwork
from repro.sim.rng import SeededRng
from repro.sim.scheduler import Simulator


class RecordingNode:
    """Minimal network endpoint that records received envelopes."""

    def __init__(self, node_id):
        self.node_id = node_id
        self.received = []

    def deliver(self, envelope):
        self.received.append(envelope)


def build_network(node_count=3, latency=None, faults=None, seed=1):
    sim = Simulator(seed=seed)
    network = SimNetwork(sim, latency=latency or ConstantLatency(0.001), faults=faults)
    nodes = [RecordingNode(i) for i in range(node_count)]
    for node in nodes:
        network.register(node)
    return sim, network, nodes


class TestLatencyModels:
    def test_constant_latency_returns_fixed_delay(self):
        model = ConstantLatency(0.005)
        assert model.sample(0, 1, SeededRng(1)) == pytest.approx(0.005)

    def test_constant_latency_rejects_negative(self):
        with pytest.raises(NetworkError):
            ConstantLatency(-1.0)

    def test_jittered_latency_within_bounds(self):
        model = JitteredLatency(0.001, 0.002)
        rng = SeededRng(3)
        for _ in range(50):
            delay = model.sample(0, 1, rng)
            assert 0.001 <= delay <= 0.003

    def test_geo_same_region_uses_intra_delay(self):
        model = GeoLatencyModel({0: "virginia", 1: "virginia"}, intra_region_ms=0.25)
        assert model.sample(0, 1, SeededRng(1)) == pytest.approx(0.25 / 1000)

    def test_geo_cross_region_uses_half_rtt(self):
        model = GeoLatencyModel({0: "virginia", 1: "london"})
        expected = model.rtt_ms[frozenset(["virginia", "london"])] / 2 / 1000
        assert model.sample(0, 1, SeededRng(1)) == pytest.approx(expected)

    def test_geo_unknown_node_uses_default_region(self):
        model = GeoLatencyModel({0: "london"}, default_region="virginia")
        assert model.region_of(99) == "virginia"

    def test_geo_uniform_spread_round_robins_regions(self):
        model = GeoLatencyModel.uniform_spread(list(range(6)), ["virginia", "london"])
        assert model.region_of(0) == "virginia"
        assert model.region_of(1) == "london"
        assert model.region_of(2) == "virginia"

    def test_region_order_has_five_paper_regions(self):
        assert len(DEFAULT_REGION_ORDER) == 5

    def test_geo_missing_rtt_entry_raises(self):
        model = GeoLatencyModel({0: "virginia", 1: "atlantis"}, rtt_ms={})
        with pytest.raises(NetworkError):
            model.sample(0, 1, SeededRng(1))


class TestSimNetwork:
    def test_send_delivers_after_latency(self):
        sim, network, nodes = build_network()
        network.send(0, 1, "hello")
        sim.run()
        assert len(nodes[1].received) == 1
        envelope = nodes[1].received[0]
        assert envelope.payload == "hello"
        assert envelope.latency == pytest.approx(0.001)

    def test_self_send_has_zero_latency(self):
        sim, network, nodes = build_network()
        network.send(1, 1, "loop")
        sim.run()
        assert nodes[1].received[0].latency == pytest.approx(0.0)

    def test_broadcast_reaches_all_nodes(self):
        sim, network, nodes = build_network(4)
        network.broadcast(0, "announce")
        sim.run()
        assert all(len(node.received) == 1 for node in nodes)

    def test_broadcast_can_exclude_self(self):
        sim, network, nodes = build_network(3)
        network.broadcast(0, "announce", include_self=False)
        sim.run()
        assert len(nodes[0].received) == 0
        assert len(nodes[1].received) == 1

    def test_send_to_unknown_node_is_dropped(self):
        sim, network, nodes = build_network()
        result = network.send(0, 99, "void")
        sim.run()
        assert result is None
        assert network.stats.messages_dropped == 1

    def test_duplicate_registration_rejected(self):
        _, network, nodes = build_network()
        with pytest.raises(NetworkError):
            network.register(nodes[0])

    def test_stats_count_sends_and_deliveries(self):
        sim, network, nodes = build_network()
        network.send(0, 1, "a")
        network.send(1, 2, "b")
        sim.run()
        stats = network.stats.as_dict()
        assert stats["messages_sent"] == 2
        assert stats["messages_delivered"] == 2

    def test_trace_hook_sees_deliveries(self):
        sim, network, nodes = build_network()
        seen = []
        network.set_trace_hook(seen.append)
        network.send(0, 1, "x")
        sim.run()
        assert len(seen) == 1

    def test_protocol_messages_are_sized_by_the_wire_codec(self):
        from repro.consensus.messages import FetchRequest
        from repro.live.codec import encoded_size

        sim, network, nodes = build_network()
        message = FetchRequest(block_hash="c" * 64, requester=0)
        envelope = network.send(0, 1, message)
        assert envelope.size_bytes == encoded_size(message)
        assert network.stats.bytes_sent == encoded_size(message)
        # Unknown payloads (test stubs) keep the historical 256-byte charge.
        network.send(0, 1, "stub")
        assert network.stats.bytes_sent == encoded_size(message) + 256
        # Explicit sizes still win over the codec.
        network.send(0, 1, message, size_bytes=10)
        assert network.stats.bytes_sent == encoded_size(message) + 256 + 10

    def test_stats_break_down_by_message_type(self):
        from repro.consensus.messages import FetchRequest

        sim, network, nodes = build_network()
        network.send(0, 1, FetchRequest(block_hash="d" * 64, requester=0))
        network.broadcast(0, "announce", include_self=False)
        network.send(0, 99, FetchRequest(block_hash="d" * 64, requester=0))  # dropped
        sim.run()
        stats = network.stats.as_dict()
        assert stats["sent_by_type"] == {"FetchRequest": 2, "str": 2}
        assert stats["delivered_by_type"] == {"FetchRequest": 1, "str": 2}

    def test_stats_merge_sums_counters(self):
        from repro.net.network import NetworkStats

        first, second = NetworkStats(), NetworkStats()
        first.record_sent("a", 10)
        second.record_sent("b", 20)
        second.record_delivered("b")
        second.messages_dropped = 3
        first.merge(second)
        assert first.messages_sent == 2
        assert first.bytes_sent == 30
        assert first.messages_dropped == 3
        assert first.sent_by_type == {"str": 2}
        assert first.delivered_by_type == {"str": 1}


class TestFaultInjection:
    def test_injected_delay_applies_to_impacted_receiver(self):
        faults = FaultInjector()
        faults.inject_delay([1], 0.05)
        sim, network, nodes = build_network(faults=faults)
        network.send(0, 1, "slow")
        network.send(0, 2, "fast")
        sim.run()
        assert nodes[1].received[0].latency == pytest.approx(0.051)
        assert nodes[2].received[0].latency == pytest.approx(0.001)

    def test_injected_delay_applies_to_impacted_sender(self):
        faults = FaultInjector()
        faults.inject_delay([0], 0.02)
        sim, network, nodes = build_network(faults=faults)
        network.send(0, 2, "slow")
        sim.run()
        assert nodes[2].received[0].latency == pytest.approx(0.021)

    def test_clear_delays_restores_base_latency(self):
        faults = FaultInjector()
        faults.inject_delay([1], 0.05)
        faults.clear_delays()
        assert faults.extra_delay(0, 1) == 0.0

    def test_drop_node_discards_messages(self):
        faults = FaultInjector()
        faults.drop_node(1)
        sim, network, nodes = build_network(faults=faults)
        network.send(0, 1, "never")
        sim.run()
        assert nodes[1].received == []
        assert faults.dropped_messages == 1

    def test_restore_node_allows_delivery_again(self):
        faults = FaultInjector()
        faults.drop_node(1)
        faults.restore_node(1)
        sim, network, nodes = build_network(faults=faults)
        network.send(0, 1, "again")
        sim.run()
        assert len(nodes[1].received) == 1

    def test_drop_link_is_directional(self):
        faults = FaultInjector()
        faults.drop_link(0, 1)
        sim, network, nodes = build_network(faults=faults)
        network.send(0, 1, "dropped")
        network.send(1, 0, "delivered")
        sim.run()
        assert nodes[1].received == []
        assert len(nodes[0].received) == 1

    def test_partition_blocks_both_directions(self):
        faults = FaultInjector()
        faults.partition([0], [1, 2])
        sim, network, nodes = build_network(faults=faults)
        network.send(0, 1, "x")
        network.send(2, 0, "y")
        network.send(1, 2, "z")
        sim.run()
        assert nodes[2].received[0].payload == "z"
        assert len(nodes[1].received) == 0
        assert len(nodes[0].received) == 0

    def test_heal_partitions(self):
        faults = FaultInjector()
        faults.partition([0], [1])
        faults.heal_partitions()
        assert not faults.should_drop(0, 1)

    def test_link_latency_override(self):
        faults = FaultInjector()
        faults.override_link_latency(0, 1, 0.2)
        sim, network, nodes = build_network(faults=faults)
        network.send(0, 1, "slow-link")
        sim.run()
        assert nodes[1].received[0].latency == pytest.approx(0.2)

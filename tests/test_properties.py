"""Property-based tests (hypothesis + seed sweeps) for core data structures
and protocol-level invariants."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.consensus.mempool import Mempool
from repro.crypto.threshold import ThresholdScheme
from repro.ledger.block import Block
from repro.ledger.blockstore import BlockStore
from repro.ledger.kvstore import KVStateMachine
from repro.ledger.speculative import SpeculativeLedger
from repro.ledger.transaction import Transaction
from repro.sim.rng import SeededRng
from repro.sim.scheduler import Simulator
from repro.workloads.zipf import ZipfGenerator


# --------------------------------------------------------------------------
# Threshold signatures
# --------------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=16),
    payload=st.text(min_size=1, max_size=20),
)
def test_threshold_aggregate_verifies_for_any_quorum(n, payload):
    f = (n - 1) // 3
    scheme = ThresholdScheme(n=n, threshold=n - f, seed=1)
    shares = [scheme.create_share(i, payload) for i in range(n - f)]
    aggregate = scheme.aggregate(shares)
    assert scheme.verify_aggregate(aggregate)
    assert aggregate.share_count == n - f


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=16),
    drop=st.integers(min_value=1, max_value=5),
)
def test_threshold_rejects_below_quorum(n, drop):
    f = (n - 1) // 3
    quorum = n - f
    scheme = ThresholdScheme(n=n, threshold=quorum, seed=1)
    count = max(0, quorum - drop)
    shares = [scheme.create_share(i, "p") for i in range(count)]
    try:
        scheme.aggregate(shares)
        reached = True
    except Exception:
        reached = False
    assert not reached


# --------------------------------------------------------------------------
# Block store ancestry
# --------------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(chain_length=st.integers(min_value=2, max_value=12), fork_at=st.integers(min_value=0, max_value=10))
def test_blockstore_ancestry_and_conflicts(chain_length, fork_at):
    store = BlockStore()
    parent = store.genesis
    chain = []
    for view in range(1, chain_length + 1):
        block = Block.build(view, 1, parent.block_hash, 0)
        store.add(block)
        chain.append(block)
        parent = block
    fork_index = min(fork_at, chain_length - 1)
    fork_parent = chain[fork_index - 1] if fork_index > 0 else store.genesis
    fork = Block.build(100, 1, fork_parent.block_hash, 1)
    store.add(fork)

    # Every block extends genesis; the tip extends every strict ancestor.
    tip = chain[-1]
    assert store.extends(tip.block_hash, store.genesis.block_hash)
    for ancestor in chain[:-1]:
        assert store.extends(tip.block_hash, ancestor.block_hash)
    # The fork conflicts with every block at or after the fork point.
    for block in chain[fork_index:]:
        assert store.conflicts(fork.block_hash, block.block_hash)
    # The common ancestor of the fork and the tip is the fork parent.
    assert store.common_ancestor(fork.block_hash, tip.block_hash).block_hash == fork_parent.block_hash


# --------------------------------------------------------------------------
# Speculative ledger: speculation + rollback always restores the exact state
# --------------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    writes=st.lists(
        st.tuples(st.sampled_from(["k1", "k2", "k3"]), st.text(min_size=1, max_size=6)),
        min_size=1,
        max_size=8,
    )
)
def test_speculate_then_rollback_restores_state(writes):
    store = BlockStore()
    machine = KVStateMachine()
    ledger = SpeculativeLedger(machine, store)
    txns = [
        Transaction.create(1, "ycsb_write", {"key": key, "value": value}, txn_id=index)
        for index, (key, value) in enumerate(writes)
    ]
    block = Block.build(1, 1, store.genesis.block_hash, 0, txns)
    store.add(block)
    digest_before = machine.state_digest()
    ledger.speculate(block)
    ledger.rollback_to_committed_head()
    assert machine.state_digest() == digest_before
    assert ledger.speculative_head_hash == ledger.committed_head_hash


@settings(max_examples=25, deadline=None)
@given(
    prefix_len=st.integers(min_value=1, max_value=5),
    value=st.text(min_size=1, max_size=5),
)
def test_commit_after_speculation_equals_direct_commit(prefix_len, value):
    """Speculate-then-promote must produce the same state as executing at commit time."""

    def build(length):
        store = BlockStore()
        machine = KVStateMachine()
        ledger = SpeculativeLedger(machine, store)
        parent = store.genesis
        blocks = []
        for view in range(1, length + 1):
            txn = Transaction.create(
                1, "ycsb_write", {"key": f"k{view}", "value": f"{value}{view}"}, txn_id=view
            )
            block = Block.build(view, 1, parent.block_hash, 0, [txn])
            store.add(block)
            blocks.append(block)
            parent = block
        return store, machine, ledger, blocks

    # Path A: speculate each block, then commit it.
    _, machine_a, ledger_a, blocks_a = build(prefix_len)
    for block in blocks_a:
        ledger_a.speculate(block)
        ledger_a.commit(block)
    # Path B: commit directly.
    _, machine_b, ledger_b, blocks_b = build(prefix_len)
    ledger_b.commit_chain(blocks_b[-1])
    assert machine_a.state_digest() == machine_b.state_digest()
    assert ledger_a.committed.ledger_digest() == ledger_b.committed.ledger_digest()


# --------------------------------------------------------------------------
# Mempool invariants
# --------------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(
    ids=st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=40),
    batch=st.integers(min_value=1, max_value=10),
)
def test_mempool_never_duplicates_or_resurrects(ids, batch):
    pool = Mempool()
    for txn_id in ids:
        pool.add(Transaction.create(1, "noop", txn_id=txn_id))
    popped = pool.next_batch(batch)
    popped_ids = [txn.txn_id for txn in popped]
    assert len(popped_ids) == len(set(popped_ids))
    pool.mark_committed(popped_ids)
    for txn in popped:
        assert not pool.add(txn)
    # Whatever remains is exactly the distinct ids minus the committed ones.
    remaining = set()
    while True:
        chunk = pool.next_batch(10)
        if not chunk:
            break
        remaining.update(txn.txn_id for txn in chunk)
    assert remaining == set(ids) - set(popped_ids)


# --------------------------------------------------------------------------
# Zipf generator bounds
# --------------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(
    items=st.integers(min_value=1, max_value=10_000),
    theta=st.floats(min_value=0.0, max_value=0.99),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_zipf_always_in_range(items, theta, seed):
    gen = ZipfGenerator(items, theta)
    rng = SeededRng(seed)
    for _ in range(50):
        assert 0 <= gen.next(rng) < items


# --------------------------------------------------------------------------
# Liveness after > f simultaneous crashes (the ROADMAP view-resync stall)
# --------------------------------------------------------------------------
#: Sim-seconds within which every restarted replica must commit a new block.
RECOVERY_BOUND_S = 0.5


@pytest.mark.parametrize("seed", range(30))
def test_liveness_regained_after_f_then_f_plus_one_simultaneous_crashes(seed):
    """Crash exactly f, then f + 1 of n = 4 replicas simultaneously; every
    honest replica must commit new operations within a bounded number of
    simulated seconds after all restarts.

    Every third seed makes the epoch leader at fire time one of the f + 1
    simultaneous victims (with epoch length f + 1 = 2, half of all views are
    epoch boundaries, so leaders die at boundaries across the sweep).  This
    is the regression test for the documented stall where survivors circled
    at high views while recovered replicas rejoined at low ones and the
    Wish/TC quorum never re-formed.
    """
    from repro.experiments.runner import ExperimentSpec, run_experiment
    from repro.faults.plan import FaultEvent, FaultPlan

    n = 4
    rng = random.Random(seed)
    single = rng.randrange(n)
    first = rng.randrange(n)
    partner = "leader" if seed % 3 == 0 else (first + 1 + rng.randrange(n - 1)) % n
    events = [
        # Phase 1: exactly f = 1 down.
        FaultEvent(at=0.10, action="crash", replica=single),
        FaultEvent(at=0.18, action="restart", replica=single),
        # Phase 2: f + 1 = 2 down simultaneously (static victim first so a
        # dynamic "leader" pick can never collide with it).
        FaultEvent(at=0.30, action="crash", replica=first),
        FaultEvent(at=0.3001, action="crash", replica=partner),
        FaultEvent(at=0.45, action="restart", replica=first),
        FaultEvent(at=0.4501, action="restart", replica=partner),
    ]
    spec = ExperimentSpec(
        protocol="hotstuff-1",
        n=n,
        batch_size=10,
        duration=1.0,
        warmup=0.05,
        seed=seed,
        faults=FaultPlan(events=events).to_dict(),
    )
    result = run_experiment(spec)
    chaos = result.chaos
    assert chaos["crashes"] == 3
    assert chaos["restarts"] == 3
    assert chaos["skipped_events"] == 0, chaos["skipped"]
    assert chaos["wal_vote_violations"] == []
    # Liveness: every crashed replica committed a *new* block after its
    # restart, within the bound.
    assert chaos["recovered"] == 3, chaos["incidents"]
    assert chaos["max_recovery_s"] is not None
    assert chaos["max_recovery_s"] <= RECOVERY_BOUND_S, chaos["incidents"]
    # Safety held throughout, and the whole cluster (survivors included)
    # kept committing well past the crash window.
    assert chaos["prefix_agreement"] is True
    assert chaos["committed_blocks_min"] > 100


# --------------------------------------------------------------------------
# Simulator determinism
# --------------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(delays=st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=30))
def test_simulator_fires_in_nondecreasing_time_order(delays):
    sim = Simulator(seed=0)
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)

"""Chaos engine: fault plans, crash/restart recovery in sim and live mode,
scenario-engine integration and the ``repro chaos`` CLI."""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.experiments.executor import execute_scenario
from repro.experiments.runner import ExperimentSpec, run_experiment
from repro.experiments.spec import ScenarioSpec
from repro.faults.plan import PRESETS, FaultEvent, FaultPlan, chaos_preset, load_plan
from repro.live.deploy import run_live_experiment


def committed_chains(replicas):
    return [
        [block.block_hash for block in replica.ledger.committed.blocks()]
        for replica in replicas
    ]


def assert_identical_prefixes(replicas):
    chains = committed_chains(replicas)
    reference = max(chains, key=len)
    assert len(reference) > 0
    for chain in chains:
        assert chain == reference[: len(chain)]
    return chains


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            events=[
                FaultEvent(at=0.2, action="crash", replica=1),
                FaultEvent(at=0.5, action="restart", replica=1),
                FaultEvent(at=0.3, action="partition", groups=((0, 1), (2, 3))),
                FaultEvent(at=0.6, action="heal"),
            ]
        )
        rebuilt = FaultPlan.from_json(plan.to_json())
        assert rebuilt == plan
        # events are kept sorted by time
        assert [event.at for event in rebuilt.events] == [0.2, 0.3, 0.5, 0.6]

    def test_load_plan_from_file(self, tmp_path):
        path = os.path.join(tmp_path, "plan.json")
        with open(path, "w") as handle:
            handle.write(FaultPlan.single_crash(2, 0.1, 0.2).to_json())
        plan = load_plan(path)
        assert [event.action for event in plan.events] == ["crash", "restart"]
        assert plan.events[0].replica == 2

    def test_validate_accepts_well_formed_plans(self):
        FaultPlan.single_crash(1, 0.1, 0.1).validate(4)
        FaultPlan.leader_crash(0.1, 0.1).validate(4)
        FaultPlan.cascade([0, 1], 0.1, 0.05, 0.2).validate(4)
        FaultPlan.partition_heal([0, 1, 2], [3], 0.1, 0.3).validate(4)

    @pytest.mark.parametrize(
        "events, message",
        [
            ([FaultEvent(at=0.1, action="explode", replica=0)], "unknown fault action"),
            ([FaultEvent(at=0.1, action="crash", replica=9)], "not a replica id"),
            ([FaultEvent(at=0.1, action="restart", replica=0)], "without a prior crash"),
            (
                [
                    FaultEvent(at=0.1, action="crash", replica=0),
                    FaultEvent(at=0.2, action="crash", replica=0),
                ],
                "already down",
            ),
            ([FaultEvent(at=0.1, action="resume", replica=0)], "without a prior pause"),
            (
                [FaultEvent(at=0.1, action="partition", groups=((0, 1), (1, 2)))],
                "overlap",
            ),
            ([FaultEvent(at=-0.1, action="crash", replica=0)], "must be >= 0"),
        ],
    )
    def test_validate_rejects_malformed_plans(self, events, message):
        with pytest.raises(ConfigurationError, match=message):
            FaultPlan(events=events).validate(4)

    def test_leader_target_limited_to_crash_restart(self):
        plan = FaultPlan(events=[FaultEvent(at=0.1, action="pause", replica="leader")])
        with pytest.raises(ConfigurationError, match="only supports crash/restart"):
            plan.validate(4)

    def test_live_mode_rejects_network_shape_faults(self):
        plan = FaultPlan.partition_heal([0, 1, 2], [3], 0.1, 0.3)
        with pytest.raises(ConfigurationError, match="simulation-only"):
            plan.validate(4, mode="live")
        FaultPlan.single_crash(1, 0.1, 0.1).validate(4, mode="live")

    def test_presets_cover_the_catalogue(self):
        assert set(PRESETS) == {
            "kill-replica",
            "kill-leader",
            "cascade",
            "partition-heal",
            "blackout",
        }
        for name in PRESETS:
            plan = chaos_preset(name, n=7, at=0.2, down_for=0.1)
            plan.validate(7)
            assert len(plan) >= 1
        with pytest.raises(ConfigurationError, match="unknown chaos preset"):
            chaos_preset("meteor-strike", n=4, at=0.1, down_for=0.1)

    def test_spec_validation_normalizes_and_checks_faults(self):
        spec = ExperimentSpec(
            protocol="hotstuff-1",
            n=4,
            faults=FaultPlan.single_crash(1, 0.1, 0.1),  # instance, not dict
        )
        spec.validate()
        assert isinstance(spec.faults, dict)
        bad = ExperimentSpec(
            protocol="hotstuff-1", n=4,
            faults={"events": [{"at": 0.1, "action": "crash", "replica": 99}]},
        )
        with pytest.raises(ConfigurationError):
            bad.validate()


class TestSimChaos:
    BASE = dict(protocol="hotstuff-1", n=4, batch_size=10, duration=0.6, warmup=0.1)

    def _run(self, plan, **overrides):
        params = dict(self.BASE)
        params.update(overrides)
        return run_experiment(ExperimentSpec(faults=plan.to_dict(), **params))

    def test_killed_replica_rejoins_and_prefixes_agree(self):
        result = self._run(FaultPlan.single_crash(1, at=0.15, down_for=0.1))
        chains = assert_identical_prefixes(result.replicas)
        chaos = result.chaos
        assert chaos["crashes"] == chaos["restarts"] == chaos["recovered"] == 1
        assert chaos["prefix_agreement"] is True
        incident = chaos["incidents"][0]
        assert incident["replica"] == 1
        assert incident["recovery_s"] > 0
        # the rejoined replica caught the cluster's committed prefix back up
        assert len(chains[1]) > 0
        assert max(len(c) for c in chains) - len(chains[1]) <= 5

    def test_leader_kill_mid_speculation_recovers(self):
        result = self._run(FaultPlan.leader_crash(at=0.2, down_for=0.1))
        assert_identical_prefixes(result.replicas)
        chaos = result.chaos
        assert chaos["recovered"] == 1
        # HotStuff-1 speculates, so the killed leader had speculated-but-
        # uncommitted operations in flight; they are counted as lost.
        assert chaos["ops_lost_to_rollback"] > 0
        assert result.summary.speculative_executions > 0

    @pytest.mark.parametrize(
        "protocol", ["hotstuff", "hotstuff-2", "hotstuff-1-slotting", "hotstuff-1-basic"]
    )
    def test_every_protocol_survives_a_crash(self, protocol):
        result = self._run(
            FaultPlan.single_crash(2, at=0.15, down_for=0.1), protocol=protocol
        )
        assert_identical_prefixes(result.replicas)
        assert result.chaos["recovered"] == 1
        assert result.chaos["prefix_agreement"] is True

    def test_cascade_restarts_every_victim(self):
        result = self._run(
            FaultPlan.cascade([0, 1], start=0.12, down_for=0.06, gap=0.15),
            duration=0.8,
        )
        assert_identical_prefixes(result.replicas)
        assert result.chaos["crashes"] == 2
        assert result.chaos["recovered"] == 2

    def test_partition_heals_and_cluster_reconverges(self):
        result = self._run(
            FaultPlan.partition_heal([0, 1, 2], [3], at=0.15, heal_at=0.35),
            duration=0.8,
        )
        chains = assert_identical_prefixes(result.replicas)
        # the minority side caught back up after the heal
        assert max(len(c) for c in chains) - min(len(c) for c in chains) <= 5

    def test_restarted_replica_keeps_its_configured_behavior(self):
        from repro.consensus.byzantine import TailForkingBehavior

        behavior = TailForkingBehavior()
        result = run_experiment(
            ExperimentSpec(
                faults=FaultPlan.single_crash(2, at=0.15, down_for=0.1).to_dict(),
                behaviors={2: behavior},
                **self.BASE,
            )
        )
        restarted = next(r for r in result.replicas if r.replica_id == 2)
        assert restarted.behavior is behavior  # adversary model survives restart
        assert restarted.behavior.is_byzantine

    def test_restarted_replica_is_a_fresh_object_with_recovered_ledger(self):
        result = self._run(FaultPlan.single_crash(1, at=0.15, down_for=0.1))
        restarted = next(r for r in result.replicas if r.replica_id == 1)
        assert restarted.halted is False
        assert restarted.store is not None
        assert len(restarted.ledger.committed.blocks()) > 0

    def test_chaos_columns_flow_into_report_rows(self):
        result = self._run(FaultPlan.single_crash(1, at=0.15, down_for=0.1))
        row = result.to_row()
        assert row["prefix_ok"] is True
        assert row["ops_lost"] >= 0
        assert row["recovery_ms"] > 0

    def test_storage_dir_is_safe_to_reuse_across_runs(self, tmp_path):
        """A second run against the same storage_dir must start from genesis,
        not replay the first run's history into fresh replicas."""
        plan = FaultPlan.single_crash(1, at=0.12, down_for=0.08)
        for _ in range(2):
            result = run_experiment(
                ExperimentSpec(
                    faults=plan.to_dict(), storage_dir=str(tmp_path), **self.BASE
                )
            )
            assert result.chaos["prefix_agreement"] is True
            assert result.chaos["recovered"] == 1

    def test_fault_free_runs_have_no_chaos_section(self):
        result = run_experiment(ExperimentSpec(**self.BASE))
        assert result.chaos is None
        assert "recovery_ms" not in result.to_row()

    def test_blackout_preset_takes_down_more_than_f_and_recovers(self):
        """The regression scenario for the view-resync stall: f + 1 of n = 4
        replicas crash simultaneously, and after the restarts the whole
        cluster must re-synchronise views and commit new operations."""
        plan = chaos_preset("blackout", n=4, at=0.15, down_for=0.2)
        assert len(plan.touched_replicas()) == 2  # f + 1 > f for n = 4
        crash_times = [e.at for e in plan.events if e.action == "crash"]
        assert len(set(crash_times)) == 1  # simultaneous, not cascaded
        plan.validate(4)  # > f simultaneous down is a first-class plan
        result = self._run(plan, duration=1.2)
        chaos = result.chaos
        assert chaos["crashes"] == chaos["restarts"] == chaos["recovered"] == 2
        assert chaos["prefix_agreement"] is True
        assert chaos["skipped_events"] == 0
        assert chaos["wal_vote_violations"] == []
        assert_identical_prefixes(result.replicas)

    def test_chaos_row_surfaces_wal_ok_and_skip_columns(self):
        result = self._run(chaos_preset("blackout", n=4, at=0.15, down_for=0.15), duration=1.0)
        row = result.to_row()
        assert row["wal_ok"] is True
        assert row["events_skipped"] == 0


class TestSkippedEventSurfacing:
    """Runtime target collisions must be reported as errors, not dropped."""

    class _Adapter:
        def __init__(self):
            self.down = set()

        def crash(self, replica_id):
            self.down.add(replica_id)
            return 0

        def restart(self, replica_id):
            self.down.discard(replica_id)
            return None

        def is_down(self, replica_id):
            return replica_id in self.down

    def _controller(self):
        from repro.faults.injector import ChaosController
        from repro.sim.scheduler import Simulator

        return ChaosController(FaultPlan(), Simulator(), self._Adapter())

    def test_double_crash_is_recorded_as_skipped(self):
        controller = self._controller()
        assert controller.trigger_crash(1) is True
        assert controller.trigger_crash(1) is False  # already down -> skipped
        report = controller.report([])
        assert report["crashes"] == 1
        assert report["skipped_events"] == 1
        assert report["skipped"][0]["skipped"] == "already down"

    def test_restart_of_running_replica_is_recorded_as_skipped(self):
        controller = self._controller()
        assert controller.trigger_restart(2) is None  # never crashed -> skipped
        report = controller.report([])
        assert report["skipped_events"] == 1
        assert report["skipped"][0]["skipped"] == "not down"


class TestChaosScenarioEngine:
    def test_chaos_kind_expands_and_runs(self):
        scenario = ScenarioSpec(
            name="chaos-smoke",
            kind="chaos",
            protocols=("hotstuff-1",),
            axes={"fault": ["kill-replica", "kill-leader"]},
            params={"n": 4, "batch_size": 10, "duration": 0.5, "warmup": 0.1},
        )
        rows = execute_scenario(scenario)
        assert [row["fault"] for row in rows] == ["kill-replica", "kill-leader"]
        for row in rows:
            assert row["prefix_ok"] is True
            assert row["recovery_ms"] > 0

    def test_inline_plan_dict_as_axis_value(self):
        plan = FaultPlan.single_crash(2, at=0.12, down_for=0.08).to_dict()
        scenario = ScenarioSpec(
            name="chaos-inline",
            kind="chaos",
            protocols=("hotstuff-1",),
            axes={"fault": [plan]},
            params={"n": 4, "batch_size": 10, "duration": 0.5, "warmup": 0.1},
        )
        rows = execute_scenario(scenario)
        assert rows[0]["fault"] == "custom"
        assert rows[0]["prefix_ok"] is True

    def test_faults_param_rides_any_scenario_kind(self):
        scenario = ScenarioSpec(
            name="scalability-chaos",
            kind="scalability",
            protocols=("hotstuff-1",),
            axes={"n": [4]},
            params={
                "batch_size": 10,
                "duration": 0.5,
                "warmup": 0.1,
                "faults": FaultPlan.single_crash(1, 0.15, 0.1).to_dict(),
            },
        )
        rows = execute_scenario(scenario)
        assert rows[0]["prefix_ok"] is True
        assert rows[0]["recovery_ms"] > 0


class TestRepeatAggregation:
    def test_metric_column_missing_from_first_repeat_still_aggregates(self):
        from repro.experiments.executor import aggregate_records
        from repro.experiments.spec import RunRecord

        def record(index, row, metrics):
            return RunRecord(
                index=index, group=0, scenario="s", repeat=index, seed=index,
                row=row, metrics=metrics,
            )

        base = {"protocol": "hotstuff-1", "throughput_tps": 100.0}
        records = [
            record(0, dict(base), {"throughput_tps": 100.0}),  # never recovered
            record(1, {**base, "recovery_ms": 12.0}, {"throughput_tps": 100.0, "recovery_ms": 12.0}),
            record(2, {**base, "recovery_ms": 18.0}, {"throughput_tps": 100.0, "recovery_ms": 18.0}),
        ]
        [row] = aggregate_records(records)
        assert row["recovery_ms"] == 15.0  # mean of the repeats that measured it
        assert row["recovery_ms_std"] == 3.0
        assert row["repeats"] == 3

    def test_prefix_ok_folds_with_all_over_repeats(self):
        from repro.experiments.executor import aggregate_records
        from repro.experiments.spec import RunRecord

        def record(index, prefix_ok):
            return RunRecord(
                index=index, group=0, scenario="s", repeat=index, seed=index,
                row={"protocol": "hotstuff-1", "prefix_ok": prefix_ok}, metrics={},
            )

        [row] = aggregate_records([record(0, True), record(1, False), record(2, True)])
        assert row["prefix_ok"] is False  # one divergent repeat must surface


class TestLiveChaos:
    def test_live_crash_restart_reaches_identical_prefixes(self):
        plan = FaultPlan.single_crash(1, at=0.5, down_for=0.4)
        spec = ExperimentSpec(
            protocol="hotstuff-1", mode="live", n=4, batch_size=10,
            duration=12.0, warmup=0.2, view_timeout=0.05, seed=11,
            faults=plan.to_dict(),
        )
        # Sized so the run is still in flight when the crash fires at 0.5s and
        # keeps going past the restart at 0.9s (~800 tps on localhost).
        result = run_live_experiment(spec, target_ops=1200)
        assert_identical_prefixes(result.replicas)
        chaos = result.chaos
        assert chaos["crashes"] == chaos["restarts"] == chaos["recovered"] == 1
        assert chaos["prefix_agreement"] is True
        assert chaos["incidents"][0]["recovery_s"] > 0


class TestLiveActionCapabilityGuard:
    """Sim-only fault actions must fail loudly on the live runtime, not
    vanish into the event loop (the swallowed-NotImplementedError bug)."""

    def test_live_adapter_rejects_network_shape_actions_pointedly(self):
        from repro.faults.live import LiveChaosAdapter
        from repro.faults.plan import LIVE_ACTIONS

        assert tuple(LiveChaosAdapter.supported_actions) == LIVE_ACTIONS == (
            "crash", "restart",
        )
        adapter = LiveChaosAdapter.__new__(LiveChaosAdapter)  # hooks untouched
        for call in (lambda: adapter.pause(1), lambda: adapter.resume(1),
                     lambda: adapter.partition([(0, 1), (2, 3)]),
                     lambda: adapter.heal()):
            with pytest.raises(ConfigurationError, match="simulation-only"):
                call()

    def test_install_rejects_actions_the_adapter_cannot_fire(self):
        """A programmatic plan that skips spec validation must still be
        stopped at install time, before any timer is armed."""
        from repro.faults.injector import ChaosAdapter, ChaosController
        from repro.sim.scheduler import Simulator

        class _CrashOnly(ChaosAdapter):
            supported_actions = ("crash", "restart")

        plan = FaultPlan(events=[FaultEvent(at=0.1, action="pause", replica=1)])
        controller = ChaosController(plan, Simulator(), _CrashOnly())
        with pytest.raises(ConfigurationError, match="pause.*not.*supported"):
            controller.install()

    def test_live_run_with_sim_only_plan_fails_at_validation(self):
        plan = FaultPlan.partition_heal([0, 1, 2], [3], at=0.2, heal_at=0.5)
        spec = ExperimentSpec(
            protocol="hotstuff-1", mode="live", n=4, duration=1.0,
            faults=plan.to_dict(),
        )
        with pytest.raises(ConfigurationError, match="partition"):
            run_live_experiment(spec, target_ops=10)

    def test_chaos_cli_rejects_sim_only_plan_in_live_mode(self, capsys):
        exit_code = main(
            ["chaos", "partition-heal", "--replicas", "4",
             "--duration", "1.0", "--mode", "live"]
        )
        assert exit_code == 2
        assert "partition" in capsys.readouterr().err

    def test_emit_plan_validates_before_printing(self, capsys):
        """--emit-plan used to skip validation entirely; a live-mode emit of
        a sim-only plan must fail instead of printing an unusable plan."""
        exit_code = main(
            ["chaos", "partition-heal", "--replicas", "4",
             "--duration", "1.0", "--mode", "live", "--emit-plan"]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert captured.out == ""  # nothing emitted
        assert "partition" in captured.err


class TestChaosCli:
    def test_emit_plan_prints_json(self, capsys):
        exit_code = main(
            ["chaos", "kill-leader", "--replicas", "4", "--duration", "1.0", "--emit-plan"]
        )
        assert exit_code == 0
        plan = FaultPlan.from_json(capsys.readouterr().out)
        assert [event.action for event in plan.events] == ["crash", "restart"]
        assert plan.events[0].replica == "leader"

    def test_chaos_subcommand_runs_and_reports_recovery(self, capsys):
        exit_code = main(
            [
                "chaos", "kill-replica",
                "--replicas", "4", "--batch", "10",
                "--duration", "0.5", "--warmup", "0.1",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "chaos & recovery" in output
        assert "recovery_ms" in output

    def test_run_subcommand_accepts_faults_file(self, tmp_path, capsys):
        path = os.path.join(tmp_path, "plan.json")
        with open(path, "w") as handle:
            handle.write(FaultPlan.single_crash(1, 0.12, 0.08).to_json())
        exit_code = main(
            [
                "run", "--protocol", "hotstuff-1", "--replicas", "4",
                "--batch", "10", "--duration", "0.5", "--warmup", "0.1",
                "--faults", path,
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "chaos & recovery" in output

    def test_unknown_preset_is_a_configuration_error(self, capsys):
        exit_code = main(["chaos", "black-swan", "--replicas", "4"])
        assert exit_code == 2
        assert "unknown chaos preset" in capsys.readouterr().err

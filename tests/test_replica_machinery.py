"""Unit tests for replica-level machinery: certificates tracking, commit rules,
recovery (block fetch), equivocation handling and the chained voting rule."""

from __future__ import annotations

import pytest

from repro.consensus.certificates import CertKind
from repro.consensus.messages import (
    ClientRequest,
    FetchRequest,
    FetchResponse,
    NewView,
    Propose,
)
from repro.consensus.protocols.hotstuff import HotStuffReplica
from repro.consensus.protocols.hotstuff2 import HotStuff2Replica
from repro.core.streamlined import HotStuff1Replica
from repro.ledger.block import Block
from repro.net.message import Envelope

from tests.conftest import make_txn
from tests.helpers import ReplicaHarness


def add_block(harness, view, parent, slot=1, txns=1, seed=0):
    block = Block.build(
        view=view,
        slot=slot,
        parent_hash=parent.block_hash,
        proposer=view % harness.config.n,
        transactions=[make_txn(seed + view * 10 + i) for i in range(txns)],
    )
    harness.replica.block_store.add(block)
    return block


class TestCertificateTracking:
    def test_record_certificate_updates_highest(self):
        harness = ReplicaHarness(HotStuff2Replica)
        genesis = harness.replica.block_store.genesis
        block1 = add_block(harness, 1, genesis)
        block2 = add_block(harness, 2, block1)
        cert1 = harness.certificate(CertKind.PREPARE, block1)
        cert2 = harness.certificate(CertKind.PREPARE, block2)
        assert harness.replica.record_certificate(cert1)
        assert harness.replica.high_cert is cert1
        assert harness.replica.record_certificate(cert2)
        assert harness.replica.high_cert is cert2
        # Recording an older certificate keeps the highest unchanged.
        harness.replica.record_certificate(cert1)
        assert harness.replica.high_cert is cert2

    def test_invalid_certificate_is_rejected(self):
        harness = ReplicaHarness(HotStuff2Replica)
        genesis = harness.replica.block_store.genesis
        block1 = add_block(harness, 1, genesis)
        cert = harness.certificate(CertKind.PREPARE, block1)
        forged = type(cert)(
            kind=cert.kind,
            view=cert.view + 3,
            slot=cert.slot,
            block_hash=cert.block_hash,
            signature=cert.signature,
            formed_in_view=cert.formed_in_view,
        )
        assert not harness.replica.record_certificate(forged)
        assert harness.replica.high_cert.is_genesis

    def test_certificate_for_parent_of_walks_one_step(self):
        harness = ReplicaHarness(HotStuff2Replica)
        genesis = harness.replica.block_store.genesis
        block1 = add_block(harness, 1, genesis)
        block2 = add_block(harness, 2, block1)
        cert1 = harness.certificate(CertKind.PREPARE, block1)
        cert2 = harness.certificate(CertKind.PREPARE, block2)
        harness.replica.record_certificate(cert1)
        harness.replica.record_certificate(cert2)
        parent_cert = harness.replica.certificate_for_parent_of(cert2)
        assert parent_cert is not None and parent_cert.block_hash == block1.block_hash


class TestCommitRules:
    def make_chain_with_certs(self, harness, length):
        genesis = harness.replica.block_store.genesis
        parent = genesis
        blocks, certs = [], []
        for view in range(1, length + 1):
            block = add_block(harness, view, parent)
            cert = harness.certificate(CertKind.PREPARE, block)
            harness.replica.justify_of[block.block_hash] = (
                certs[-1] if certs else harness.replica.genesis_cert
            )
            harness.replica.record_certificate(cert)
            blocks.append(block)
            certs.append(cert)
            parent = block
        return blocks, certs

    def test_two_chain_rule_commits_parent(self):
        harness = ReplicaHarness(HotStuff2Replica)
        blocks, certs = self.make_chain_with_certs(harness, 3)
        target = harness.replica._commit_target(blocks[2])
        assert target.block_hash == blocks[1].block_hash

    def test_three_chain_rule_commits_grandparent(self):
        harness = ReplicaHarness(HotStuffReplica)
        blocks, certs = self.make_chain_with_certs(harness, 3)
        target = harness.replica._commit_target(blocks[2])
        assert target.block_hash == blocks[0].block_hash

    def test_non_consecutive_views_do_not_commit(self):
        harness = ReplicaHarness(HotStuff2Replica)
        genesis = harness.replica.block_store.genesis
        block1 = add_block(harness, 1, genesis)
        # View 3 extends view 1: a view was skipped, so the 2-chain rule must not fire.
        block3 = add_block(harness, 3, block1)
        assert harness.replica._commit_target(block3) is None

    def test_commit_up_to_marks_mempool_and_responds_once(self):
        harness = ReplicaHarness(HotStuff1Replica)
        genesis = harness.replica.block_store.genesis
        block1 = add_block(harness, 1, genesis, txns=3)
        outcomes = harness.replica.commit_up_to(block1)
        assert len(outcomes) == 1
        assert all(
            harness.mempool.is_committed(txn.txn_id) for txn in block1.transactions
        )
        # Committing again is a no-op.
        assert harness.replica.commit_up_to(block1) == []


class TestRecoveryAndFetch:
    def test_fetch_request_returns_known_block(self):
        harness = ReplicaHarness(HotStuff2Replica)
        genesis = harness.replica.block_store.genesis
        block1 = add_block(harness, 1, genesis)
        sent = []
        harness.replica.send = lambda target, payload, size_bytes=256: sent.append((target, payload))
        harness.replica.handle_fetch_request(FetchRequest(block_hash=block1.block_hash, requester=2), sender=2)
        assert sent and isinstance(sent[0][1], FetchResponse)
        assert sent[0][1].block.block_hash == block1.block_hash

    def test_fetch_request_for_unknown_block_is_ignored(self):
        harness = ReplicaHarness(HotStuff2Replica)
        sent = []
        harness.replica.send = lambda target, payload, size_bytes=256: sent.append(payload)
        harness.replica.handle_fetch_request(FetchRequest(block_hash="f" * 64, requester=2), sender=2)
        assert sent == []

    def test_proposal_with_unknown_justify_block_triggers_fetch(self):
        harness = ReplicaHarness(HotStuff1Replica, replica_id=1)
        harness.replica.pacemaker.start(1)
        # Build a block/cert pair the replica has never seen.
        other = ReplicaHarness(HotStuff1Replica, replica_id=0)
        genesis = other.replica.block_store.genesis
        missing = add_block(other, 1, genesis)
        cert = other.certificate(CertKind.PREPARE, missing)
        next_block = Block.build(
            view=2, slot=1, parent_hash=missing.block_hash, proposer=2, transactions=[make_txn(7)]
        )
        proposal = Propose(view=2, slot=1, block=next_block, justify=cert)
        requested = []
        harness.replica.send = lambda target, payload, size_bytes=256: requested.append(payload)
        harness.replica.handle_propose(proposal, sender=2)
        fetches = [msg for msg in requested if isinstance(msg, FetchRequest)]
        assert fetches and fetches[0].block_hash == missing.block_hash
        # Delivering the block afterwards lets the parked proposal proceed.
        harness.replica.handle_fetch_response(FetchResponse(block=missing), sender=2)
        assert missing.block_hash in harness.replica.block_store

    def test_client_request_lands_in_mempool(self):
        harness = ReplicaHarness(HotStuff2Replica)
        txn = make_txn(55)
        harness.replica.handle_client_request(ClientRequest(txn=txn), sender=-1)
        assert txn.txn_id in harness.mempool


class TestVotingRule:
    def build_proposal(self, harness, view, justify_block, justify_kind=CertKind.PREPARE):
        cert = harness.certificate(justify_kind, justify_block)
        block = Block.build(
            view=view,
            slot=1,
            parent_hash=justify_block.block_hash,
            proposer=harness.leaders.leader_of(view),
            transactions=[make_txn(view * 7)],
        )
        harness.replica.block_store.add(block)
        return Propose(view=view, slot=1, block=block, justify=cert), cert

    def test_replica_votes_for_fresh_proposal(self):
        harness = ReplicaHarness(HotStuff2Replica, replica_id=0)
        harness.replica.pacemaker.start(1)
        genesis = harness.replica.block_store.genesis
        block1 = add_block(harness, 1, genesis)
        proposal, _ = self.build_proposal(harness, 2, block1)
        harness.replica.pacemaker.force_enter(2)
        harness.replica.handle_propose(proposal, sender=harness.leaders.leader_of(2))
        harness.run(0.01)
        assert 2 in harness.replica._voted_views

    def test_replica_refuses_stale_justify(self):
        harness = ReplicaHarness(HotStuff2Replica, replica_id=0)
        harness.replica.pacemaker.start(1)
        genesis = harness.replica.block_store.genesis
        block1 = add_block(harness, 1, genesis)
        block2 = add_block(harness, 2, block1)
        fresh = harness.certificate(CertKind.PREPARE, block2)
        harness.replica.record_certificate(fresh)
        # A proposal extending only the genesis certificate is below the
        # replica's highest certificate, so it must not be voted for.
        stale_proposal, _ = self.build_proposal(harness, 3, genesis, justify_kind=CertKind.PREPARE)
        harness.replica.pacemaker.force_enter(3)
        harness.replica.handle_propose(stale_proposal, sender=harness.leaders.leader_of(3))
        harness.run(0.01)
        assert 3 not in harness.replica._voted_views

    def test_proposal_from_non_leader_is_ignored(self):
        harness = ReplicaHarness(HotStuff2Replica, replica_id=0)
        harness.replica.pacemaker.start(1)
        genesis = harness.replica.block_store.genesis
        block1 = add_block(harness, 1, genesis)
        proposal, _ = self.build_proposal(harness, 2, block1)
        wrong_sender = (harness.leaders.leader_of(2) + 1) % harness.config.n
        harness.replica.handle_propose(proposal, sender=wrong_sender)
        harness.run(0.01)
        assert 2 not in harness.replica._voted_views

    def test_malformed_block_parent_is_rejected(self):
        harness = ReplicaHarness(HotStuff2Replica, replica_id=0)
        harness.replica.pacemaker.start(1)
        genesis = harness.replica.block_store.genesis
        block1 = add_block(harness, 1, genesis)
        cert = harness.certificate(CertKind.PREPARE, block1)
        bad_block = Block.build(
            view=2, slot=1, parent_hash=genesis.block_hash, proposer=harness.leaders.leader_of(2)
        )
        harness.replica.block_store.add(bad_block)
        proposal = Propose(view=2, slot=1, block=bad_block, justify=cert)
        harness.replica.pacemaker.force_enter(2)
        harness.replica.handle_propose(proposal, sender=harness.leaders.leader_of(2))
        harness.run(0.01)
        assert 2 not in harness.replica._voted_views


class TestEnvelope:
    def test_latency_is_delivery_minus_send(self):
        envelope = Envelope(sender=0, receiver=1, payload="x", sent_at=1.0, deliver_at=1.25)
        assert envelope.latency == pytest.approx(0.25)

    def test_envelope_ids_are_unique(self):
        first = Envelope(sender=0, receiver=1, payload="x", sent_at=0.0)
        second = Envelope(sender=0, receiver=1, payload="y", sent_at=0.0)
        assert first.envelope_id != second.envelope_id


class TestNewViewCollection:
    def test_leader_forms_previous_certificate_from_votes(self):
        harness = ReplicaHarness(HotStuff2Replica, replica_id=2)
        harness.replica.pacemaker.start(1)
        harness.replica.pacemaker.force_enter(2)
        genesis = harness.replica.block_store.genesis
        block1 = add_block(harness, 1, genesis)
        # Simulate n-f NewView messages carrying votes for block1.
        for voter in range(harness.config.quorum):
            share = harness.authority.create_vote(
                voter, CertKind.PREPARE, block1.view, block1.slot, block1.block_hash
            )
            message = NewView(
                view=2,
                voter=voter,
                high_cert=harness.replica.genesis_cert,
                share=share,
                voted_block_hash=block1.block_hash,
            )
            harness.replica.handle_new_view(message, sender=voter)
        assert harness.replica.high_cert.block_hash == block1.block_hash
        # Being the leader of view 2, it proposes once the certificate is formed.
        assert 2 in harness.replica._proposed_views

"""Durable storage: WAL round-trips, durable blockstore, pruning, fetch path,
and crash recovery (restore + never-vote-twice)."""

from __future__ import annotations

import json
import os

import pytest

from repro.consensus.certificates import CertKind
from repro.consensus.messages import FetchRequest, FetchResponse
from repro.consensus.metrics import MetricsCollector
from repro.core.streamlined import HotStuff1Replica
from repro.experiments.runner import ExperimentSpec, run_experiment
from repro.faults.plan import FaultEvent, FaultPlan
from repro.ledger.blockstore import BlockStore
from repro.ledger.kvstore import KVStateMachine
from repro.storage import (
    DurableBlockStore,
    FileLogBackend,
    MemoryLogBackend,
    RecoveryManager,
    ReplicaStore,
    WriteAheadLog,
)
from tests.conftest import build_chain, certificate_for
from tests.helpers import ReplicaHarness


class TestLogBackends:
    def test_memory_backend_appends_and_replays_in_order(self):
        backend = MemoryLogBackend()
        backend.append({"a": 1})
        backend.append({"b": 2})
        assert backend.replay() == [{"a": 1}, {"b": 2}]
        backend.clear()
        assert backend.replay() == []

    def test_file_backend_survives_reopen(self, tmp_path):
        path = os.path.join(tmp_path, "log.jsonl")
        first = FileLogBackend(path)
        first.append({"n": 1})
        first.append({"n": 2})
        first.close()
        reopened = FileLogBackend(path)
        assert reopened.replay() == [{"n": 1}, {"n": 2}]
        reopened.append({"n": 3})
        assert [record["n"] for record in reopened.replay()] == [1, 2, 3]
        reopened.close()

    def test_file_backend_tolerates_torn_final_line(self, tmp_path):
        path = os.path.join(tmp_path, "log.jsonl")
        backend = FileLogBackend(path)
        backend.append({"ok": True})
        backend.close()
        with open(path, "a") as handle:
            handle.write('{"torn": tru')  # crash mid-append
        reopened = FileLogBackend(path)
        assert reopened.replay() == [{"ok": True}]
        reopened.close()


class TestWriteAheadLog:
    def test_records_round_trip_and_reduce(self):
        harness = ReplicaHarness(HotStuff1Replica)
        blocks = build_chain(harness.replica.block_store, 3)
        cert = harness.certificate(CertKind.PREPARE, blocks[-1])
        wal = WriteAheadLog(MemoryLogBackend())
        wal.append_vote(1, 1, blocks[0].block_hash)
        wal.append_vote(2, 1, blocks[1].block_hash)
        wal.append_high_cert(cert)
        wal.append_commit(blocks[0].block_hash)
        wal.append_commit(blocks[1].block_hash)

        state = wal.reduce()
        assert state.last_voted_view == 2
        assert state.voted_views == {1, 2}
        assert state.highest_voted_hash == blocks[1].block_hash
        assert state.high_cert == cert  # certificate round-trips exactly
        assert state.committed_hashes == [blocks[0].block_hash, blocks[1].block_hash]

    def test_reduce_keeps_highest_certificate_and_dedupes_commits(self):
        harness = ReplicaHarness(HotStuff1Replica)
        blocks = build_chain(harness.replica.block_store, 2)
        low = harness.certificate(CertKind.PREPARE, blocks[0])
        high = harness.certificate(CertKind.PREPARE, blocks[1])
        wal = WriteAheadLog(MemoryLogBackend())
        wal.append_high_cert(high)
        wal.append_high_cert(low)  # stale update must not win
        wal.append_commit(blocks[0].block_hash)
        wal.append_commit(blocks[0].block_hash)
        state = wal.reduce()
        assert state.high_cert == high
        assert state.committed_hashes == [blocks[0].block_hash]

    def test_wal_survives_file_reopen(self, tmp_path):
        harness = ReplicaHarness(HotStuff1Replica)
        blocks = build_chain(harness.replica.block_store, 1)
        store = ReplicaStore.at_path(tmp_path, 0)
        store.record_vote(3, 1, blocks[0].block_hash)
        store.record_commit(blocks[0].block_hash)
        store.close()
        reopened = ReplicaStore.at_path(tmp_path, 0)
        state = reopened.load_state()
        assert state.last_voted_view == 3
        assert state.committed_hashes == [blocks[0].block_hash]
        reopened.close()

    def test_suspended_appends_are_dropped(self):
        store = ReplicaStore.memory()
        with store.suspended():
            store.record_vote(1, 1, "deadbeef")
        store.record_vote(2, 1, "cafe")
        assert [record.view for record in store.wal.records()] == [2]

    def test_entered_view_and_peer_views_round_trip_and_reduce(self):
        wal = WriteAheadLog(MemoryLogBackend())
        wal.append_entered_view(5)
        wal.append_entered_view(9)
        wal.append_entered_view(7)  # out-of-order replay still folds to max
        wal.append_peer_views({1: 12, 2: 9})
        wal.append_peer_views({2: 15, 3: 4})
        state = wal.reduce()
        assert state.entered_view == 9
        assert state.peer_views == {1: 12, 2: 15, 3: 4}

    def test_peer_view_keys_survive_json_file_round_trip(self, tmp_path):
        store = ReplicaStore.at_path(tmp_path, 0)
        store.record_entered_view(21)
        store.record_peer_views({1: 20, 3: 22})
        store.close()
        reopened = ReplicaStore.at_path(tmp_path, 0)
        state = reopened.load_state()
        assert state.entered_view == 21
        assert state.peer_views == {1: 20, 3: 22}  # int keys, not strings
        reopened.close()

    def test_resume_view_is_past_entered_views_not_just_voted_ones(self):
        from repro.storage.recovery import RecoveryManager

        wal = WriteAheadLog(MemoryLogBackend())
        wal.append_vote(3, 1, "a" * 64)
        wal.append_entered_view(41)  # circled to view 41 on timeouts, no votes
        state = wal.reduce()
        assert RecoveryManager.resume_view(state) == 42


class TestDurableBlockStore:
    def test_blocks_persist_across_incarnations(self):
        backend = MemoryLogBackend()
        first = DurableBlockStore(backend)
        blocks = build_chain(first, 4, txns_per_block=2)
        rebuilt = DurableBlockStore(backend)
        assert len(rebuilt) == len(first)
        assert rebuilt.extends(blocks[-1].block_hash, blocks[0].block_hash)
        # transactions round-trip through the codec
        assert rebuilt.get(blocks[1].block_hash).transactions == blocks[1].transactions

    def test_duplicate_add_is_not_persisted_twice(self):
        backend = MemoryLogBackend()
        store = DurableBlockStore(backend)
        [block] = build_chain(store, 1)
        store.add(block)
        store.add(block)
        assert len(backend) == 1


class TestForkPruning:
    def _fork(self, store: BlockStore):
        from repro.ledger.block import Block

        main = build_chain(store, 3)
        fork = Block.build(
            view=1, slot=1, parent_hash=store.genesis.block_hash, proposer=3
        )
        store.add(fork)
        orphan_child = Block.build(
            view=2, slot=1, parent_hash=fork.block_hash, proposer=3
        )
        store.add(orphan_child)
        return main, fork, orphan_child

    def test_prune_siblings_removes_fork_subtree_and_counts(self, block_store):
        main, fork, orphan_child = self._fork(block_store)
        pruned = block_store.prune_siblings_of(main[0])
        assert set(pruned) == {fork.block_hash, orphan_child.block_hash}
        assert block_store.pruned_count == 2
        assert fork.block_hash not in block_store
        assert orphan_child.block_hash not in block_store
        # the committed chain and its ancestry queries are untouched
        assert block_store.extends(main[-1].block_hash, main[0].block_hash)
        assert block_store.children_of(block_store.genesis.block_hash) == [block_store.get(main[0].block_hash)]

    def test_commit_prunes_forks_and_drops_their_metadata(self):
        harness = ReplicaHarness(HotStuff1Replica)
        replica = harness.replica
        main, fork, orphan_child = self._fork(replica.block_store)
        fork_cert = harness.certificate(CertKind.PREPARE, fork)
        replica.record_certificate(fork_cert)
        assert fork.block_hash in replica.certs_by_block

        replica.commit_up_to(main[0])
        assert fork.block_hash not in replica.block_store
        assert fork.block_hash not in replica.certs_by_block
        assert replica.block_store.pruned_count == 2

    def test_pruned_count_reported_in_metrics(self):
        plan = FaultPlan.single_crash(1, at=0.1, down_for=0.05)
        spec = ExperimentSpec(
            protocol="hotstuff-1", n=4, batch_size=10, duration=0.4, warmup=0.1,
            faults=plan.to_dict(),
        )
        result = run_experiment(spec)
        assert "pruned_blocks" in result.summary.as_dict()
        assert result.summary.pruned_blocks >= 0


class TestFetchPath:
    def _setup(self):
        harness = ReplicaHarness(HotStuff1Replica)
        # Build the chain in a *separate* store so the replica does not know it.
        remote = BlockStore(genesis=harness.replica.block_store.genesis)
        chain = build_chain(remote, 3)
        return harness, chain

    def _fetch_requests_sent(self, harness):
        return harness.network.stats.sent_by_type.get("FetchRequest", 0)

    def test_fetch_response_insertion_is_idempotent(self):
        harness, chain = self._setup()
        replica = harness.replica
        response = FetchResponse(block=chain[0])
        replica.handle_fetch_response(response, sender=1)
        assert chain[0].block_hash in replica.block_store
        before = len(replica.block_store)
        requests_before = self._fetch_requests_sent(harness)
        replica.handle_fetch_response(response, sender=1)  # duplicate response
        assert len(replica.block_store) == before
        assert self._fetch_requests_sent(harness) == requests_before

    def test_fetch_walks_missing_ancestry_back_to_known_blocks(self):
        harness, chain = self._setup()
        replica = harness.replica
        # Deliver the *newest* block first: its parent chain is unknown.
        replica.handle_fetch_response(FetchResponse(block=chain[2]), sender=1)
        assert self._fetch_requests_sent(harness) == 1  # asked for chain[1]
        replica.handle_fetch_response(FetchResponse(block=chain[1]), sender=1)
        assert self._fetch_requests_sent(harness) == 2  # asked for chain[0]
        replica.handle_fetch_response(FetchResponse(block=chain[0]), sender=1)
        # chain[0]'s parent is genesis — already known, no further request
        assert self._fetch_requests_sent(harness) == 2
        assert replica.block_store.extends(chain[2].block_hash, chain[0].block_hash)

    def test_lagging_replica_converges_via_catch_up(self):
        """A replica isolated mid-run (pause) converges to the cluster's
        committed prefix after resuming, through FetchRequest/FetchResponse."""
        plan = FaultPlan(
            events=[
                FaultEvent(at=0.15, action="pause", replica=2),
                FaultEvent(at=0.4, action="resume", replica=2),
            ]
        )
        spec = ExperimentSpec(
            protocol="hotstuff-1", n=4, batch_size=10, duration=0.9, warmup=0.1,
            faults=plan.to_dict(),
        )
        result = run_experiment(spec)
        chains = [
            [block.block_hash for block in replica.ledger.committed.blocks()]
            for replica in result.replicas
        ]
        reference = max(chains, key=len)
        lagging = chains[2]
        assert lagging == reference[: len(lagging)]
        # converged: within a handful of in-flight blocks of the longest chain
        assert len(reference) - len(lagging) <= 5
        assert result.network_stats["sent_by_type"].get("FetchRequest", 0) > 0


class TestRecoveryManager:
    def _populated_store(self, harness):
        """A store as a crashed replica would have left it."""
        store = ReplicaStore.memory()
        blocks = build_chain(store.open_blockstore(), 3, txns_per_block=2)
        cert = harness.certificate(CertKind.PREPARE, blocks[2])
        store.record_vote(1, 1, blocks[0].block_hash)
        store.record_vote(2, 1, blocks[1].block_hash)
        store.record_vote(3, 1, blocks[2].block_hash)
        store.record_high_cert(cert)
        store.record_commit(blocks[0].block_hash)
        store.record_commit(blocks[1].block_hash)
        return store, blocks, cert

    def _fresh_replica(self, harness, store, replica_id=1):
        return HotStuff1Replica(
            replica_id,
            harness.sim,
            harness.network,
            harness.config,
            harness.authority,
            harness.leaders,
            KVStateMachine(),
            harness.mempool,
            MetricsCollector(),
            block_store=store.open_blockstore(),
            store=store,
        )

    def test_restore_rebuilds_votes_certificates_and_committed_prefix(self):
        harness = ReplicaHarness(HotStuff1Replica)
        store, blocks, cert = self._populated_store(harness)
        replica = self._fresh_replica(harness, store)
        state = RecoveryManager(store).restore(replica)

        assert replica.last_voted_view == 3
        assert replica._voted_views == {1, 2, 3}
        assert replica.high_cert == cert
        committed = [block.block_hash for block in replica.ledger.committed.blocks()]
        assert committed == [blocks[0].block_hash, blocks[1].block_hash]
        assert RecoveryManager.resume_view(state) == blocks[2].view + 1

    def test_restore_is_silent_in_the_wal(self):
        harness = ReplicaHarness(HotStuff1Replica)
        store, blocks, cert = self._populated_store(harness)
        records_before = len(store.wal.backend.replay())
        replica = self._fresh_replica(harness, store)
        RecoveryManager(store).restore(replica)
        assert len(store.wal.backend.replay()) == records_before

    def test_restored_state_machine_matches_reexecution(self):
        harness = ReplicaHarness(HotStuff1Replica)
        store, blocks, cert = self._populated_store(harness)
        replica = self._fresh_replica(harness, store)
        RecoveryManager(store).restore(replica)

        reference = KVStateMachine()
        for block in blocks[:2]:
            for txn in block.transactions:
                reference.apply(txn)
        assert replica.ledger.state_digest() == reference.state_digest()

    def test_restore_re_prunes_resurrected_fork_blocks(self):
        from repro.ledger.block import Block

        harness = ReplicaHarness(HotStuff1Replica)
        store, blocks, cert = self._populated_store(harness)
        # A fork block the dead incarnation pruned still sits in the
        # append-only block log and is replayed on open.
        fork = Block.build(
            view=1, slot=1,
            parent_hash=harness.replica.block_store.genesis.block_hash,
            proposer=3,
        )
        store.open_blockstore().add(fork)
        replica = self._fresh_replica(harness, store)
        assert fork.block_hash in replica.block_store  # resurrected by replay
        RecoveryManager(store).restore(replica)
        assert fork.block_hash not in replica.block_store  # re-pruned

    def test_catch_up_requests_certified_but_missing_block(self):
        harness = ReplicaHarness(HotStuff1Replica)
        # Certificate for a block the store never persisted.
        remote = BlockStore(genesis=harness.replica.block_store.genesis)
        blocks = build_chain(remote, 2)
        cert = harness.certificate(CertKind.PREPARE, blocks[1])
        store = ReplicaStore.memory()
        store.record_high_cert(cert)
        replica = self._fresh_replica(harness, store, replica_id=2)
        manager = RecoveryManager(store)
        manager.restore(replica)
        manager.catch_up(replica)
        assert harness.network.stats.sent_by_type.get("FetchRequest", 0) == 1


class TestNeverVoteTwice:
    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_no_replica_equivocates_across_a_crash(self, seed):
        """Property: across every incarnation of every replica, the WAL shows
        at most one vote per (view, slot) — a restarted replica never votes
        twice in a view it voted in before the crash."""
        plan = FaultPlan.single_crash(1, at=0.12, down_for=0.08)
        spec = ExperimentSpec(
            protocol="hotstuff-1", n=4, batch_size=10, duration=0.6, warmup=0.1,
            seed=seed, faults=plan.to_dict(),
        )
        result = run_experiment(spec)
        for replica in result.replicas:
            votes = {}
            for record in replica.store.wal.records():
                if record.kind != "vote":
                    continue
                key = (record.view, record.slot)
                assert votes.setdefault(key, record.block_hash) == record.block_hash, (
                    f"replica {replica.replica_id} voted twice in view/slot {key}"
                )

    def test_restored_replica_refuses_revote_in_voted_view(self):
        harness = ReplicaHarness(HotStuff1Replica)
        store = ReplicaStore.memory()
        store.record_vote(5, 1, "aa" * 32)
        replica = HotStuff1Replica(
            1,
            harness.sim,
            harness.network,
            harness.config,
            harness.authority,
            harness.leaders,
            KVStateMachine(),
            harness.mempool,
            MetricsCollector(),
            block_store=store.open_blockstore(),
            store=store,
        )
        RecoveryManager(store).restore(replica)
        assert 5 in replica._voted_views  # handle_propose's re-vote guard
        assert replica.last_voted_view == 5

"""Unit tests for the cryptography substrate."""

from __future__ import annotations

import pytest

from repro.crypto.hashing import combine_digests, hash_bytes, hash_fields, hash_json, hash_text
from repro.crypto.keys import KeyPair, Keychain
from repro.crypto.signatures import require_valid_signature, sign_message, verify_signature
from repro.crypto.threshold import ThresholdScheme
from repro.errors import CryptoError, InvalidSignatureError, ThresholdError


class TestHashing:
    def test_hash_bytes_is_hex_sha256(self):
        digest = hash_bytes(b"hello")
        assert len(digest) == 64
        assert digest == hash_bytes(b"hello")

    def test_different_inputs_different_digests(self):
        assert hash_text("a") != hash_text("b")

    def test_hash_fields_is_order_sensitive(self):
        assert hash_fields("a", "b") != hash_fields("b", "a")

    def test_hash_fields_separates_adjacent_fields(self):
        assert hash_fields("ab", "c") != hash_fields("a", "bc")

    def test_hash_json_is_key_order_insensitive(self):
        assert hash_json({"a": 1, "b": 2}) == hash_json({"b": 2, "a": 1})

    def test_combine_digests_depends_on_order(self):
        digests = [hash_text("x"), hash_text("y")]
        assert combine_digests(digests) != combine_digests(reversed(digests))


class TestKeys:
    def test_generation_is_deterministic(self):
        assert KeyPair.generate("replica:1", seed=3) == KeyPair.generate("replica:1", seed=3)

    def test_different_owners_different_keys(self):
        a = KeyPair.generate("replica:1", seed=3)
        b = KeyPair.generate("replica:2", seed=3)
        assert a.secret != b.secret
        assert a.public != b.public

    def test_keychain_creates_and_returns_same_pair(self):
        chain = Keychain(seed=1)
        first = chain.create("client:9")
        second = chain.create("client:9")
        assert first is second

    def test_keychain_create_replicas(self):
        chain = Keychain(seed=1)
        pairs = chain.create_replicas(4)
        assert sorted(pairs) == [0, 1, 2, 3]
        assert len(chain) == 4

    def test_keychain_get_unknown_raises(self):
        with pytest.raises(CryptoError):
            Keychain().get("nobody")


class TestSignatures:
    def test_sign_and_verify_roundtrip(self):
        key = KeyPair.generate("replica:0")
        signature = sign_message(key, "deadbeef")
        assert verify_signature(key, signature)

    def test_wrong_key_fails_verification(self):
        key = KeyPair.generate("replica:0")
        other = KeyPair.generate("replica:1")
        signature = sign_message(key, "deadbeef")
        assert not verify_signature(other, signature)

    def test_tampered_digest_fails(self):
        key = KeyPair.generate("replica:0")
        signature = sign_message(key, "deadbeef")
        forged = type(signature)(signer=signature.signer, digest="cafebabe", value=signature.value)
        assert not verify_signature(key, forged)

    def test_require_valid_signature_raises(self):
        key = KeyPair.generate("replica:0")
        other = KeyPair.generate("replica:1")
        signature = sign_message(other, "deadbeef")
        with pytest.raises(InvalidSignatureError):
            require_valid_signature(key, signature)


class TestThresholdScheme:
    def make_scheme(self, n=4, threshold=3):
        return ThresholdScheme(n=n, threshold=threshold, seed=11)

    def test_share_verifies(self):
        scheme = self.make_scheme()
        share = scheme.create_share(0, "payload", "ctx")
        assert scheme.verify_share(share)

    def test_share_from_unknown_signer_rejected(self):
        scheme = self.make_scheme()
        share = scheme.create_share(1, "payload", "ctx")
        forged = type(share)(signer=99, payload=share.payload, context=share.context, value=share.value)
        assert not scheme.verify_share(forged)

    def test_aggregate_requires_threshold_distinct_signers(self):
        scheme = self.make_scheme()
        shares = [scheme.create_share(i, "payload") for i in range(2)]
        with pytest.raises(ThresholdError):
            scheme.aggregate(shares)

    def test_duplicate_signers_do_not_count_twice(self):
        scheme = self.make_scheme()
        shares = [scheme.create_share(0, "payload")] * 3
        with pytest.raises(ThresholdError):
            scheme.aggregate(shares)

    def test_aggregate_and_verify(self):
        scheme = self.make_scheme()
        shares = [scheme.create_share(i, "payload", "prepare") for i in range(3)]
        aggregate = scheme.aggregate(shares)
        assert aggregate.share_count == 3
        assert scheme.verify_aggregate(aggregate)

    def test_mixed_payload_shares_rejected(self):
        scheme = self.make_scheme()
        shares = [scheme.create_share(0, "a"), scheme.create_share(1, "a"), scheme.create_share(2, "b")]
        with pytest.raises(ThresholdError):
            scheme.aggregate(shares)

    def test_invalid_share_rejected_at_aggregation(self):
        scheme = self.make_scheme()
        good = [scheme.create_share(i, "payload") for i in range(2)]
        bad = type(good[0])(signer=3, payload="payload", context="", value="0" * 64)
        with pytest.raises(ThresholdError):
            scheme.aggregate(good + [bad])

    def test_tampered_aggregate_fails_verification(self):
        scheme = self.make_scheme()
        shares = [scheme.create_share(i, "payload") for i in range(3)]
        aggregate = scheme.aggregate(shares)
        forged = type(aggregate)(
            payload="other",
            context=aggregate.context,
            signers=aggregate.signers,
            threshold=aggregate.threshold,
            fingerprint=aggregate.fingerprint,
        )
        assert not scheme.verify_aggregate(forged)

    def test_context_separates_domains(self):
        scheme = self.make_scheme()
        slot_share = scheme.create_share(0, "payload", "new-slot")
        view_share = scheme.create_share(0, "payload", "new-view")
        assert slot_share.value != view_share.value

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ThresholdError):
            ThresholdScheme(n=0, threshold=1)
        with pytest.raises(ThresholdError):
            ThresholdScheme(n=4, threshold=5)

    def test_cost_model_scales_with_share_count(self):
        scheme = self.make_scheme()
        assert scheme.aggregate_cost(10) > scheme.aggregate_cost(5)
        assert scheme.verify_cost(10) > 0

"""Checkpointing subsystem: snapshots, log compaction, state transfer.

Covers the invariants the subsystem exists to uphold:

* snapshots capture the *committed* state only (speculation never leaks in)
  and round-trip to an identical digest for every state machine;
* after compaction, restart replays the snapshot plus the post-snapshot
  suffix — never the whole history (asserted on WAL record counts);
* a digest or certificate mismatch on a transferred snapshot falls back to
  block-by-block fetch; a fetch for a compacted block is answered with the
  covering snapshot;
* crash-during-snapshot and crash-after-compaction keep the never-vote-twice
  and committed-prefix invariants.
"""

from __future__ import annotations

import json
import os
from dataclasses import replace

import pytest

from repro.checkpoint.manager import HOOK_MID_SNAPSHOT, HOOK_POST_COMPACTION, CheckpointManager
from repro.checkpoint.snapshot import Snapshot, verify_snapshot
from repro.consensus.certificates import CertKind
from repro.consensus.messages import SnapshotRequest, SnapshotResponse
from repro.consensus.metrics import MetricsCollector
from repro.core.streamlined import HotStuff1Replica
from repro.errors import ForkError
from repro.experiments.executor import execute_scenario
from repro.experiments.runner import ExperimentSpec, run_experiment
from repro.experiments.scenarios import snapshot_recovery_spec
from repro.faults.crashpoints import SNAPSHOT_HOOKS, CrashPoint, CrashPointPlan
from repro.faults.plan import FaultPlan
from repro.ledger.blockstore import BlockStore
from repro.ledger.kvstore import KVStateMachine
from repro.ledger.ledger import CommittedLedger
from repro.ledger.speculative import SpeculativeLedger
from repro.ledger.tpcc_state import TPCCStateMachine
from repro.storage import MemoryLogBackend, RecoveryManager, ReplicaStore, WriteAheadLog
from tests.conftest import build_chain, make_txn
from tests.helpers import ReplicaHarness


class TestStateMachineSnapshots:
    @pytest.mark.parametrize(
        "factory, operations",
        [
            (
                lambda: KVStateMachine(),
                [("ycsb_write", {"key": "user7", "value": "v7"}),
                 ("ycsb_rmw", {"key": "user7", "value": "v8"})],
            ),
            (
                lambda: TPCCStateMachine(warehouses=1, items=20),
                [("tpcc_payment", {"w_id": 1, "d_id": 2, "c_id": 3, "amount": 12.5}),
                 ("tpcc_new_order", {"w_id": 1, "d_id": 1, "c_id": 1,
                                     "items": [{"i_id": 5, "qty": 2}]})],
            ),
        ],
    )
    def test_snapshot_round_trips_to_identical_digest(self, factory, operations):
        from repro.ledger.transaction import Transaction

        machine = factory()
        for index, (operation, payload) in enumerate(operations):
            machine.apply(
                Transaction.create(
                    client_id=1, operation=operation, payload=payload, txn_id=500 + index
                )
            )
        payload = machine.snapshot_state()
        digest = machine.state_digest()
        # the payload is JSON-serializable as-is (tuple keys are tagged)
        payload = json.loads(json.dumps(payload))
        assert type(machine).payload_digest(payload) == digest
        restored = factory()
        restored.restore_state(payload)
        assert restored.state_digest() == digest

    def test_restored_machine_keeps_executing_and_undoing(self):
        machine = KVStateMachine()
        machine.apply(make_txn(1))
        restored = KVStateMachine()
        restored.restore_state(json.loads(json.dumps(machine.snapshot_state())))
        result, undo = restored.apply_with_undo(make_txn(2))
        assert result.success
        restored.undo(undo)
        assert restored.state_digest() == machine.state_digest()


class TestCommittedSnapshotExcludesSpeculation:
    def test_speculated_suffix_is_excluded_and_reinstated(self, block_store):
        ledger = SpeculativeLedger(KVStateMachine(), block_store)
        chain = build_chain(block_store, 3, txns_per_block=2)
        ledger.commit(chain[0])
        committed_digest = ledger.state_digest()
        ledger.speculate(chain[1])
        speculated_digest = ledger.state_digest()
        assert speculated_digest != committed_digest

        payload, digest = ledger.snapshot_committed_state()
        assert digest == committed_digest  # no speculative leak
        assert KVStateMachine.payload_digest(payload) == committed_digest
        # the suffix is still live and still undoable afterwards
        assert ledger.state_digest() == speculated_digest
        ledger.rollback_to_committed_head()
        assert ledger.state_digest() == committed_digest


class TestCommittedLedgerBase:
    def test_restore_base_and_append_over_it(self, block_store):
        chain = build_chain(block_store, 3)
        ledger = CommittedLedger()
        ledger.restore_base([block.block_hash for block in chain[:2]])
        assert len(ledger) == 2
        assert ledger.head is None
        assert ledger.head_hash == chain[1].block_hash
        assert chain[0].block_hash in ledger
        assert ledger.position_of(chain[1].block_hash) == 1
        assert ledger.append(chain[2]) == 2
        assert ledger.hashes() == [block.block_hash for block in chain]

    def test_append_not_extending_the_base_forks(self, block_store):
        chain = build_chain(block_store, 2)
        ledger = CommittedLedger()
        ledger.restore_base([chain[0].block_hash])
        with pytest.raises(ForkError):
            # chain[1] extends chain[0], a fresh unrelated block does not
            from repro.ledger.block import Block

            ledger.append(Block.build(view=9, slot=1, parent_hash="ab" * 32, proposer=0))

    def test_restore_base_requires_an_empty_ledger(self, block_store):
        chain = build_chain(block_store, 2)
        ledger = CommittedLedger()
        ledger.append(chain[0])
        with pytest.raises(ForkError):
            ledger.restore_base([chain[0].block_hash])

    def test_collapse_below_demotes_blocks_keeping_positions(self, block_store):
        chain = build_chain(block_store, 4)
        ledger = CommittedLedger()
        for block in chain:
            ledger.append(block)
        assert ledger.collapse_below(3) == 3
        assert ledger.base_height == 3
        assert len(ledger.blocks()) == 1
        assert len(ledger) == 4
        assert ledger.position_of(chain[0].block_hash) == 0
        assert ledger.hashes() == [block.block_hash for block in chain]
        assert ledger.head_hash == chain[3].block_hash


def _sealed_snapshot(harness, length=3, txns_per_block=2):
    """A valid snapshot built from a donor chain executed on a fresh machine."""
    donor_store = BlockStore(genesis=harness.replica.block_store.genesis)
    chain = build_chain(donor_store, length, txns_per_block=txns_per_block)
    machine = KVStateMachine()
    for block in chain:
        for txn in block.transactions:
            machine.apply(txn)
    return Snapshot(
        height=length,
        block=chain[-1],
        cert=harness.certificate(CertKind.PREPARE, chain[-1]),
        state_digest=machine.state_digest(),
        state=machine.snapshot_state(),
        committed_hashes=[block.block_hash for block in chain],
    ), chain, machine


class TestSnapshotVerification:
    def test_valid_snapshot_passes(self):
        harness = ReplicaHarness(HotStuff1Replica)
        snapshot, _, _ = _sealed_snapshot(harness)
        assert verify_snapshot(snapshot, harness.authority) is None

    def test_rejections(self):
        harness = ReplicaHarness(HotStuff1Replica)
        snapshot, chain, machine = _sealed_snapshot(harness)
        assert verify_snapshot(None, harness.authority) == "no snapshot offered"
        tampered_state = replace(snapshot, state_digest="0" * 64)
        assert "digest mismatch" in verify_snapshot(tampered_state, harness.authority)
        short_chain = replace(snapshot, committed_hashes=snapshot.committed_hashes[:-1])
        assert "height" in verify_snapshot(short_chain, harness.authority)
        wrong_cert = replace(
            snapshot, cert=harness.certificate(CertKind.PREPARE, chain[0])
        )
        assert "certificate" in verify_snapshot(wrong_cert, harness.authority)

    def test_wire_round_trip_preserves_verifiability(self):
        harness = ReplicaHarness(HotStuff1Replica)
        snapshot, _, _ = _sealed_snapshot(harness)
        rebuilt = Snapshot.from_dict(json.loads(json.dumps(snapshot.to_dict())))
        assert rebuilt == snapshot
        assert verify_snapshot(rebuilt, harness.authority) is None


class TestStateTransferHandlers:
    def _fetch_requests(self, harness):
        return harness.network.stats.sent_by_type.get("FetchRequest", 0)

    def test_valid_snapshot_installs_and_rebases(self):
        harness = ReplicaHarness(HotStuff1Replica)
        replica = harness.replica
        snapshot, chain, machine = _sealed_snapshot(harness)
        replica.handle_snapshot_response(
            SnapshotResponse(responder=1, snapshot=snapshot), sender=1
        )
        assert replica.snapshots_installed == 1
        assert len(replica.ledger.committed) == 3
        assert replica.ledger.committed_head_hash == chain[-1].block_hash
        assert replica.ledger.state_digest() == machine.state_digest()
        assert chain[-1].block_hash in replica.block_store

    def test_digest_mismatch_falls_back_to_block_fetch(self):
        harness = ReplicaHarness(HotStuff1Replica)
        replica = harness.replica
        snapshot, chain, _ = _sealed_snapshot(harness)
        corrupted = replace(snapshot, state={"tables": {"usertable": [["user0", "evil"]]}})
        # give the replica a high certificate pointing at a missing block, so
        # the fallback has something to fetch
        replica.record_certificate(harness.certificate(CertKind.PREPARE, chain[-1]))
        before = self._fetch_requests(harness)
        replica.handle_snapshot_response(
            SnapshotResponse(responder=1, snapshot=corrupted), sender=1
        )
        assert replica.snapshots_rejected == 1
        assert replica.snapshots_installed == 0
        assert len(replica.ledger.committed) == 0  # nothing adopted
        assert self._fetch_requests(harness) == before + 1  # block-by-block path

    def test_conflicting_local_prefix_is_rejected(self, block_store):
        harness = ReplicaHarness(HotStuff1Replica)
        replica = harness.replica
        snapshot, _, _ = _sealed_snapshot(harness)
        # locally commit a block that is NOT in the snapshot chain
        local = build_chain(replica.block_store, 1, txns_per_block=0, start_view=9)
        replica.ledger.commit(local[0])
        replica.handle_snapshot_response(
            SnapshotResponse(responder=1, snapshot=snapshot), sender=1
        )
        assert replica.snapshots_rejected == 1
        assert replica.ledger.committed_head_hash == local[0].block_hash

    def test_empty_response_only_falls_back(self):
        harness = ReplicaHarness(HotStuff1Replica)
        replica = harness.replica
        replica.handle_snapshot_response(SnapshotResponse(responder=1), sender=1)
        assert replica.snapshots_rejected == 0
        assert replica.snapshots_installed == 0

    def test_request_served_from_durable_store(self):
        harness = ReplicaHarness(HotStuff1Replica)
        replica = harness.replica
        store = ReplicaStore.memory()
        replica.store = store
        snapshot, _, _ = _sealed_snapshot(harness)
        store.save_snapshot(snapshot)
        sent = []
        replica.send = lambda target, payload, **kw: sent.append((target, payload))
        replica.handle_snapshot_request(SnapshotRequest(requester=2, have_height=0), sender=2)
        assert sent and isinstance(sent[0][1], SnapshotResponse)
        assert sent[0][1].snapshot == snapshot
        sent.clear()
        # nothing newer than the requester's height -> empty response
        replica.handle_snapshot_request(SnapshotRequest(requester=2, have_height=3), sender=2)
        assert sent[0][1].snapshot is None

    def test_install_prunes_distributed_pool_below_txn_horizon(self):
        """Regression: a snapshot-rejoining replica with its own (distributed)
        pool must drop every transaction at or below the snapshot's committed
        txn-id horizon, or it re-proposes already-committed transactions the
        moment it next leads."""
        from repro.consensus.mempool import Mempool

        harness = ReplicaHarness(HotStuff1Replica)
        replica = harness.replica
        replica.mempool = Mempool(shared=False)
        for index in range(1, 6):  # txn ids 1_000_001 .. 1_000_005
            replica.mempool.add(make_txn(index))
        snapshot, _, _ = _sealed_snapshot(harness)
        snapshot = replace(snapshot, txn_horizon=1_000_003)
        replica.handle_snapshot_response(
            SnapshotResponse(responder=1, snapshot=snapshot), sender=1
        )
        assert replica.snapshots_installed == 1
        remaining = [txn.txn_id for txn in replica.mempool.next_batch(10)]
        assert remaining == [1_000_004, 1_000_005]

    def test_shared_pool_is_never_pruned_by_a_horizon(self):
        """The one shared pool holds other replicas' pending transactions;
        one replica's snapshot install must not discard them."""
        harness = ReplicaHarness(HotStuff1Replica)
        replica = harness.replica
        for index in range(1, 4):
            replica.mempool.add(make_txn(index))
        snapshot, _, _ = _sealed_snapshot(harness)
        snapshot = replace(snapshot, txn_horizon=2_000_000)
        replica.handle_snapshot_response(
            SnapshotResponse(responder=1, snapshot=snapshot), sender=1
        )
        assert replica.snapshots_installed == 1
        assert replica.mempool.peek_count() == 3

    def test_txn_horizon_survives_the_wire_and_tolerates_old_senders(self):
        harness = ReplicaHarness(HotStuff1Replica)
        snapshot, _, _ = _sealed_snapshot(harness)
        snapshot = replace(snapshot, txn_horizon=42)
        doc = json.loads(json.dumps(snapshot.to_dict()))
        assert Snapshot.from_dict(doc).txn_horizon == 42
        doc.pop("txn_horizon")  # a sender predating the field
        assert Snapshot.from_dict(doc).txn_horizon == -1

    def test_oversize_snapshot_is_declined_not_dropped(self, monkeypatch):
        """Regression: a snapshot too large for one wire frame used to be
        handed to the transport anyway, where FrameTooLargeError dropped it
        and the requester waited forever.  The sender must decline (empty
        response -> immediate block-fetch fallback) and count the decline."""
        import repro.live.codec as codec

        harness = ReplicaHarness(HotStuff1Replica)
        replica = harness.replica
        store = ReplicaStore.memory()
        replica.store = store
        snapshot, _, _ = _sealed_snapshot(harness)
        store.save_snapshot(snapshot)
        sent = []
        replica.send = lambda target, payload, **kw: sent.append(payload)

        monkeypatch.setattr(codec, "MAX_FRAME_BYTES", 256)
        replica.handle_snapshot_request(SnapshotRequest(requester=2, have_height=0), sender=2)
        assert sent[-1].snapshot is None  # declined, not dropped
        assert replica.snapshots_declined_oversize == 1

        monkeypatch.setattr(codec, "MAX_FRAME_BYTES", 1 << 20)
        replica.handle_snapshot_request(SnapshotRequest(requester=2, have_height=0), sender=2)
        assert sent[-1].snapshot == snapshot  # fits again -> served
        assert replica.snapshots_declined_oversize == 1

    def test_declined_transfer_falls_back_to_block_fetch(self):
        """The requester side of the decline: an empty response must prime
        the block-by-block path toward its highest known certificate."""
        harness = ReplicaHarness(HotStuff1Replica)
        replica = harness.replica
        snapshot, chain, _ = _sealed_snapshot(harness)
        replica.record_certificate(harness.certificate(CertKind.PREPARE, chain[-1]))
        fetches = harness.network.stats.sent_by_type.get("FetchRequest", 0)
        replica.handle_snapshot_response(SnapshotResponse(responder=1), sender=1)
        assert replica.snapshots_installed == 0
        assert harness.network.stats.sent_by_type.get("FetchRequest", 0) == fetches + 1

    def test_fetch_of_compacted_block_is_answered_with_the_snapshot(self):
        from repro.consensus.messages import FetchRequest

        harness = ReplicaHarness(HotStuff1Replica)
        replica = harness.replica
        store = ReplicaStore.memory()
        replica.store = store
        snapshot, chain, _ = _sealed_snapshot(harness)
        store.save_snapshot(snapshot)
        sent = []
        replica.send = lambda target, payload, **kw: sent.append((target, payload))
        # chain[0] is covered by the snapshot but not in the replica's tree
        replica.handle_fetch_request(
            FetchRequest(block_hash=chain[0].block_hash, requester=2), sender=2
        )
        assert sent and isinstance(sent[0][1], SnapshotResponse)
        assert sent[0][1].snapshot == snapshot
        sent.clear()
        replica.handle_fetch_request(FetchRequest(block_hash="55" * 32, requester=2), sender=2)
        assert sent == []  # unknown and uncovered: silence, as before


class TestWalCompaction:
    def test_compact_below_keeps_only_the_suffix(self):
        harness = ReplicaHarness(HotStuff1Replica)
        blocks = build_chain(harness.replica.block_store, 6)
        cert = harness.certificate(CertKind.PREPARE, blocks[-1])
        wal = WriteAheadLog(MemoryLogBackend())
        for index, block in enumerate(blocks):
            wal.append_vote(block.view, 1, block.block_hash)
            wal.append_commit(block.block_hash)
        wal.append_high_cert(cert)
        wal.append_entered_view(7)
        covered = {block.block_hash for block in blocks[:4]}
        dropped = wal.compact_below(blocks[3].view, covered)
        assert dropped > 0
        state = wal.reduce()
        # suffix commits survive, covered ones are gone
        assert state.committed_hashes == [b.block_hash for b in blocks[4:]]
        # votes at or above the snapshot view survive (same-view slots may
        # still need dedup), older ones are dropped
        votes = {record.view for record in wal.records() if record.kind == "vote"}
        assert votes == {blocks[3].view, blocks[4].view, blocks[5].view}
        assert state.high_cert == cert
        assert state.entered_view == 7

    def test_snapshot_log_keeps_only_the_newest(self):
        harness = ReplicaHarness(HotStuff1Replica)
        store = ReplicaStore.memory()
        first, _, _ = _sealed_snapshot(harness, length=2)
        second, _, _ = _sealed_snapshot(harness, length=4)
        store.save_snapshot(first)
        store.save_snapshot(second)
        assert store.latest_snapshot() == second
        assert len(store._snapshot_backend.replay()) == 1

    def test_torn_snapshot_record_is_skipped(self, tmp_path):
        harness = ReplicaHarness(HotStuff1Replica)
        snapshot, _, _ = _sealed_snapshot(harness)
        store = ReplicaStore.at_path(tmp_path, 0)
        store.save_snapshot(snapshot)
        store.close()
        path = os.path.join(tmp_path, "replica-0", "snapshots.jsonl")
        with open(path, "a") as handle:
            handle.write('{"__t": "snapshot", "height": 99, "torn": tru')
        reopened = ReplicaStore.at_path(tmp_path, 0)
        assert reopened.latest_snapshot() == snapshot
        reopened.close()


class TestCheckpointedRecovery:
    def test_restart_replays_snapshot_plus_suffix_only(self, tmp_path):
        """Acceptance: with checkpoint_interval set, a replica restarted after
        >= 5x the interval recovers from the latest snapshot and replays only
        the post-snapshot suffix (WAL record counts), with its on-disk logs
        truncated below the snapshot height."""
        interval = 5
        plan = FaultPlan.single_crash(1, at=0.15, down_for=0.3)
        spec = ExperimentSpec(
            protocol="hotstuff-1", n=4, batch_size=10, duration=0.8, warmup=0.1,
            checkpoint_interval=interval, storage_dir=str(tmp_path),
            faults=plan.to_dict(),
        )
        result = run_experiment(spec)
        assert result.chaos["recovered"] == 1
        assert result.chaos["prefix_agreement"] is True
        restarted = next(r for r in result.replicas if r.replica_id == 1)
        height = len(restarted.ledger.committed)
        assert height >= 5 * interval
        # recovered from a snapshot: most of the prefix is hash-only
        assert restarted.ledger.committed.base_height > 0
        # the on-disk WAL holds the post-snapshot suffix, not the history
        wal_lines = _jsonl_lines(tmp_path, "replica-1", "wal.jsonl")
        assert 0 < len(wal_lines) < height / 2
        commit_records = [line for line in wal_lines if line.get("kind") == "commit"]
        snapshot = restarted.store.latest_snapshot()
        assert snapshot is not None
        assert all(
            record["block_hash"] not in snapshot.covered() for record in commit_records
        )
        # the block log is truncated below the snapshot height too
        block_lines = _jsonl_lines(tmp_path, "replica-1", "blocks.jsonl")
        assert len(block_lines) < height / 2

    def test_pruned_fork_blocks_leave_the_block_log(self):
        from repro.ledger.block import Block
        from repro.storage.blockstore import DurableBlockStore

        backend = MemoryLogBackend()
        store = DurableBlockStore(backend)
        chain = build_chain(store, 3)
        fork = Block.build(
            view=1, slot=1, parent_hash=store.genesis.block_hash, proposer=3
        )
        store.add(fork)
        store.prune_siblings_of(chain[0])
        assert any(rec["block_hash"] == fork.block_hash for rec in backend.replay())
        dropped = store.compact_log()
        assert dropped == 1  # the pruned fork finally leaves the log
        assert not any(rec["block_hash"] == fork.block_hash for rec in backend.replay())
        rebuilt = DurableBlockStore(backend)
        assert len(rebuilt) == len(store)

    def test_manager_requires_a_positive_interval(self):
        harness = ReplicaHarness(HotStuff1Replica)
        with pytest.raises(ValueError):
            CheckpointManager(harness.replica, 0)


class TestSnapshotCrashPoints:
    @pytest.mark.parametrize("hook", SNAPSHOT_HOOKS)
    def test_single_crash_at_each_snapshot_hook_recovers(self, hook):
        plan = CrashPointPlan(
            points=[CrashPoint(replica=1, hook=hook, occurrence=2, down_for=0.1)]
        )
        spec = ExperimentSpec(
            protocol="hotstuff-1", n=4, batch_size=10, duration=0.8, warmup=0.1,
            checkpoint_interval=4, crash_points=plan.to_dict(),
        )
        result = run_experiment(spec)
        chaos = result.chaos
        assert chaos["crashes"] == 1, chaos["timeline"]
        assert chaos["incidents"][0]["hook"] == hook
        assert chaos["recovered"] == 1
        assert chaos["prefix_agreement"] is True
        assert chaos["wal_vote_violations"] == []

    @pytest.mark.parametrize("seed", [1, 2, 3, 5, 8])
    def test_snapshot_hook_fuzz_seeds_hold_the_invariants(self, seed):
        """Crash-during-snapshot / crash-after-compaction across random seeds:
        never-vote-twice and committed-prefix must hold from the snapshot plus
        suffix alone."""
        plan = CrashPointPlan.randomized(
            n=4, seed=seed, crashes=2, down_for=0.12, hooks=SNAPSHOT_HOOKS
        )
        spec = ExperimentSpec(
            protocol="hotstuff-1", n=4, batch_size=10, duration=0.8, warmup=0.1,
            seed=seed, checkpoint_interval=4, crash_points=plan.to_dict(),
        )
        result = run_experiment(spec)
        chaos = result.chaos
        assert chaos["prefix_agreement"] is True, (seed, chaos["timeline"])
        assert chaos["wal_vote_violations"] == [], (seed, chaos["wal_vote_violations"])
        assert chaos["skipped_events"] == 0
        assert chaos["recovered"] + chaos["superseded"] == chaos["crashes"]


class TestSnapshotScenarioAndCli:
    def test_snapshot_recovery_kind_reports_state_transfers(self):
        scenario = snapshot_recovery_spec(
            protocols=("hotstuff-1",), faults=("kill-replica",),
            checkpoint_interval=5, duration=0.8, warmup=0.1,
        )
        rows = execute_scenario(scenario)
        assert len(rows) == 1
        row = rows[0]
        assert row["fault"] == "kill-replica"
        assert row["checkpoint_interval"] == 5
        assert row["prefix_ok"] is True
        assert row["snapshots"] > 0
        assert row["state_transfers"] >= 1  # the rejoin went through transfer

    def test_snapshot_cli_inspects_a_storage_dir(self, tmp_path, capsys):
        from repro.cli import main

        spec = ExperimentSpec(
            protocol="hotstuff-1", n=4, batch_size=10, duration=0.4, warmup=0.1,
            checkpoint_interval=5, storage_dir=str(tmp_path),
        )
        run_experiment(spec)
        assert main(["snapshot", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "snapshot_height" in out
        assert "replica-0" not in out  # rendered as bare ids
        assert main(["snapshot", os.path.join(str(tmp_path), "missing")]) == 2

    def test_fuzz_cli_covers_snapshot_hooks(self, capsys):
        from repro.cli import main

        exit_code = main(
            [
                "fuzz", "--protocol", "hotstuff-1", "--replicas", "4",
                "--batch", "10", "--duration", "0.8", "--seeds", "2",
                "--hooks", "mid-snapshot,post-compaction",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "mid-snapshot" in out


def _jsonl_lines(base, replica_dir, name):
    path = os.path.join(str(base), replica_dir, name)
    lines = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                lines.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return lines

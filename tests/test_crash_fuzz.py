"""Crash-point fuzzing: plans, hook instrumentation, recovery invariants.

The invariants under test at every crash point (including torn-tail WAL
truncation mid-append):

* **never-vote-twice** — a replica's replayed WAL holds at most one vote
  record per ``(view, slot)``, across any number of crash/restart cycles;
* **committed-prefix agreement** — honest replicas' committed ledgers remain
  prefixes of each other.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.consensus.replica import (
    HOOK_AFTER_VOTE_WAL,
    HOOK_BEFORE_VOTE_WAL,
    HOOK_MID_CERT,
)
from repro.errors import ConfigurationError
from repro.experiments.executor import execute_scenario
from repro.experiments.runner import ExperimentSpec, run_experiment
from repro.experiments.scenarios import chaos_fuzz_spec
from repro.faults.crashpoints import (
    CRASH_HOOKS,
    SNAPSHOT_HOOKS,
    HOOK_TORN_VOTE_WAL,
    CrashPoint,
    CrashPointPlan,
    wal_vote_violations,
)
from repro.storage.backend import FileLogBackend, MemoryLogBackend
from repro.storage.store import ReplicaStore

BASE = dict(protocol="hotstuff-1", n=4, batch_size=10, duration=0.8, warmup=0.1)


def run_with(plan, **overrides):
    params = dict(BASE)
    # Snapshot hooks only fire on deployments that actually checkpoint.
    if any(point.hook in SNAPSHOT_HOOKS for point in plan.points):
        params["checkpoint_interval"] = 4
    params.update(overrides)
    return run_experiment(ExperimentSpec(crash_points=plan.to_dict(), **params))


class TestCrashPointPlan:
    def test_json_round_trip(self):
        plan = CrashPointPlan(
            points=[
                CrashPoint(replica=1, hook=HOOK_AFTER_VOTE_WAL, occurrence=5, down_for=0.1),
                CrashPoint(replica=3, hook=HOOK_MID_CERT, occurrence=2, down_for=0.05),
            ]
        )
        rebuilt = CrashPointPlan.from_json(plan.to_json())
        assert rebuilt == plan
        assert rebuilt.touched_replicas() == {1, 3}

    @pytest.mark.parametrize(
        "point, message",
        [
            (CrashPoint(0, "explode", 1, 0.1), "unknown crash hook"),
            (CrashPoint(9, HOOK_MID_CERT, 1, 0.1), "not a replica id"),
            (CrashPoint(0, HOOK_MID_CERT, 0, 0.1), "occurrence must be >= 1"),
            (CrashPoint(0, HOOK_MID_CERT, 1, 0.0), "down_for must be positive"),
        ],
    )
    def test_validate_rejects_malformed_points(self, point, message):
        with pytest.raises(ConfigurationError, match=message):
            CrashPointPlan(points=[point]).validate(4)

    def test_validate_rejects_duplicate_sites(self):
        # torn-vote-wal listens on the after-vote-wal site, so the same
        # (replica, occurrence) on both hooks is one ambiguous crash.
        plan = CrashPointPlan(
            points=[
                CrashPoint(0, HOOK_AFTER_VOTE_WAL, 3, 0.1),
                CrashPoint(0, HOOK_TORN_VOTE_WAL, 3, 0.1),
            ]
        )
        with pytest.raises(ConfigurationError, match="duplicate crash point"):
            plan.validate(4)

    def test_randomized_is_deterministic_per_seed(self):
        a = CrashPointPlan.randomized(n=4, seed=11, crashes=3)
        b = CrashPointPlan.randomized(n=4, seed=11, crashes=3)
        c = CrashPointPlan.randomized(n=4, seed=12, crashes=3)
        assert a == b
        assert a != c
        assert len(a) == 3
        for point in a.points:
            assert point.hook in CRASH_HOOKS

    def test_spec_validation_normalizes_crash_points(self):
        spec = ExperimentSpec(
            protocol="hotstuff-1",
            n=4,
            crash_points=CrashPointPlan.randomized(n=4, seed=1).to_dict(),
        )
        spec.validate()
        assert isinstance(spec.crash_points, dict)
        bad = ExperimentSpec(
            protocol="hotstuff-1",
            n=4,
            crash_points={"points": [{"replica": 9, "hook": HOOK_MID_CERT, "occurrence": 1, "down_for": 0.1}]},
        )
        with pytest.raises(ConfigurationError):
            bad.validate()


class TestHookCrashes:
    @pytest.mark.parametrize("hook", CRASH_HOOKS)
    def test_single_crash_at_each_hook_recovers_cleanly(self, hook):
        plan = CrashPointPlan(
            points=[CrashPoint(replica=1, hook=hook, occurrence=4, down_for=0.1)]
        )
        result = run_with(plan)
        chaos = result.chaos
        assert chaos["crashes"] == 1, chaos["timeline"]
        assert chaos["incidents"][0]["hook"] == hook
        assert chaos["recovered"] == 1
        assert chaos["prefix_agreement"] is True
        assert chaos["wal_vote_violations"] == []

    def test_after_wal_crash_keeps_the_vote_record_across_restart(self):
        """Crash between WAL append and send: the vote is durable, and the
        restarted incarnation must resume past that view, never re-voting it."""
        plan = CrashPointPlan(
            points=[CrashPoint(replica=2, hook=HOOK_AFTER_VOTE_WAL, occurrence=6, down_for=0.1)]
        )
        result = run_with(plan)
        assert result.chaos["wal_vote_violations"] == []
        restarted = next(r for r in result.replicas if r.replica_id == 2)
        votes = [rec for rec in restarted.store.wal.records() if rec.kind == "vote"]
        assert len({(rec.view, rec.slot) for rec in votes}) == len(votes)

    def test_fuzz_sweep_holds_invariants_across_seeds(self):
        for fuzz_seed in range(1, 7):
            plan = CrashPointPlan.randomized(n=4, seed=fuzz_seed, crashes=2, down_for=0.1)
            result = run_with(plan, seed=fuzz_seed)
            chaos = result.chaos
            assert chaos["prefix_agreement"] is True, (fuzz_seed, chaos["timeline"])
            assert chaos["wal_vote_violations"] == [], (fuzz_seed, chaos["wal_vote_violations"])
            assert chaos["skipped_events"] == 0, (fuzz_seed, chaos["skipped"])
            assert chaos["restarts"] == chaos["crashes"]

    @pytest.mark.parametrize("protocol", ["hotstuff-1-basic", "hotstuff-1-slotting"])
    def test_mid_cert_hook_fires_on_non_chained_protocols(self, protocol):
        """Certificate formation is instrumented in the basic and slotted
        leaders too, so `repro fuzz` covers those code paths."""
        plan = CrashPointPlan(
            points=[CrashPoint(replica=1, hook=HOOK_MID_CERT, occurrence=2, down_for=0.1)]
        )
        result = run_with(plan, protocol=protocol)
        chaos = result.chaos
        assert chaos["crashes"] == 1, chaos["timeline"]
        assert chaos["incidents"][0]["hook"] == HOOK_MID_CERT
        assert chaos["recovered"] == 1
        assert chaos["prefix_agreement"] is True

    def test_probe_survives_a_restart_scheduled_by_a_composed_fault_plan(self):
        """A time-scheduled FaultPlan restart builds a fresh replica object;
        the injector's probe must be re-armed on it or pending crash points
        on that replica silently die."""
        from repro.faults.crashpoints import CrashPointInjector
        from repro.faults.injector import ChaosController
        from repro.faults.plan import FaultPlan
        from repro.sim.scheduler import Simulator

        class Incarnation:
            def __init__(self, replica_id):
                self.replica_id = replica_id
                self.crash_probe = None
                self.commit_listener = None

        fresh = Incarnation(1)

        class Adapter:
            def __init__(self):
                self.down = set()

            def crash(self, replica_id):
                self.down.add(replica_id)
                return 0

            def restart(self, replica_id):
                self.down.discard(replica_id)
                return fresh

            def is_down(self, replica_id):
                return replica_id in self.down

        controller = ChaosController(FaultPlan(), Simulator(), Adapter())
        plan = CrashPointPlan(
            points=[CrashPoint(replica=1, hook=HOOK_BEFORE_VOTE_WAL, occurrence=3, down_for=0.1)]
        )
        injector = CrashPointInjector(plan, controller.scheduler, controller)
        # The crash/restart pair comes from a *time-scheduled* event, not the
        # injector itself.
        assert controller.trigger_crash(1) is True
        assert controller.trigger_restart(1) is fresh
        # bound methods compare equal iff same function on the same object
        assert fresh.crash_probe == injector._probe

    def test_torn_tail_on_file_backed_store_recovers(self, tmp_path):
        """Torn WAL truncation mid-append against real files: the vote record
        written right before the crash must be gone after replay, and the
        replica must still rejoin and agree."""
        plan = CrashPointPlan(
            points=[CrashPoint(replica=1, hook=HOOK_TORN_VOTE_WAL, occurrence=5, down_for=0.1)]
        )
        result = run_with(plan, storage_dir=str(tmp_path))
        chaos = result.chaos
        assert chaos["crashes"] == 1
        assert chaos["recovered"] == 1
        assert chaos["prefix_agreement"] is True
        assert chaos["wal_vote_violations"] == []


class TestTornTailBackends:
    def test_file_backend_tear_leaves_partial_line_that_replay_drops(self, tmp_path):
        backend = FileLogBackend(str(tmp_path / "wal.jsonl"))
        backend.append({"kind": "vote", "view": 1})
        backend.append({"kind": "vote", "view": 2})
        backend.tear_tail()
        assert backend.replay() == [{"kind": "vote", "view": 1}]
        with open(backend.path) as handle:
            raw = handle.read()
        assert not raw.endswith("\n")  # the torn line is physically present

    def test_file_backend_appends_after_a_tear_stay_readable(self, tmp_path):
        backend = FileLogBackend(str(tmp_path / "wal.jsonl"))
        backend.append({"kind": "vote", "view": 1})
        backend.tear_tail()
        backend.append({"kind": "vote", "view": 2})
        assert backend.replay() == [{"kind": "vote", "view": 2}]

    def test_reopened_file_backend_repairs_a_torn_tail(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        first = FileLogBackend(path)
        first.append({"kind": "vote", "view": 1})
        first.tear_tail()
        first.close()
        second = FileLogBackend(path)  # a fresh incarnation after a real crash
        second.append({"kind": "vote", "view": 2})
        assert second.replay() == [{"kind": "vote", "view": 2}]

    def test_memory_backend_tear_drops_the_last_record(self):
        backend = MemoryLogBackend()
        backend.append({"kind": "vote", "view": 1})
        backend.append({"kind": "vote", "view": 2})
        backend.tear_tail()
        assert backend.replay() == [{"kind": "vote", "view": 1}]


class TestWalInvariantChecker:
    def test_duplicate_votes_are_reported(self):
        store = ReplicaStore.memory()
        store.record_vote(3, 1, "a" * 64)
        store.record_vote(3, 1, "b" * 64)
        violations = wal_vote_violations({0: store})
        assert len(violations) == 1
        assert violations[0]["replica"] == 0
        assert violations[0]["view"] == 3

    def test_clean_wals_report_nothing(self):
        store = ReplicaStore.memory()
        store.record_vote(3, 1, "a" * 64)
        store.record_vote(4, 1, "b" * 64)
        assert wal_vote_violations({0: store}) == []


class TestFuzzScenarioAndCli:
    def test_chaos_fuzz_kind_sweeps_seeds_through_the_engine(self):
        scenario = chaos_fuzz_spec(
            seeds=(1, 2),
            n=4,
            batch_size=10,
            duration=0.5,
            warmup=0.1,
        )
        rows = execute_scenario(scenario)
        assert [row["fuzz_seed"] for row in rows] == [1, 2]
        for row in rows:
            assert row["prefix_ok"] is True
            assert row["wal_ok"] is True
            assert row["events_skipped"] == 0
            # every planned crash point fired and recovered (the CLI gate
            # fails any seed where that does not hold)
            assert row["crashes"] == row["planned_crashes"]
            assert row["recovered"] == row["crashes"]

    def test_fuzz_cli_runs_and_exits_zero(self, capsys):
        exit_code = main(
            [
                "fuzz", "--protocol", "hotstuff-1", "--replicas", "4",
                "--batch", "10", "--duration", "0.5", "--warmup", "0.1",
                "--seeds", "2", "--crashes", "2",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "chaos-fuzz" in output
        assert "wal_ok" in output

    def test_fuzz_cli_rejects_unknown_hooks(self, capsys):
        exit_code = main(["fuzz", "--hooks", "meteor-strike", "--seeds", "1"])
        assert exit_code == 2
        assert "unknown crash hook" in capsys.readouterr().err
